//! The moments accountant (Abadi et al., paper reference [20]) realised as
//! a Rényi-DP accountant for the subsampled Gaussian mechanism.
//!
//! Each DP-SGD / DP-FedAvg step applies the Gaussian mechanism to a
//! Poisson-subsampled batch (sampling rate `q`, noise multiplier `σ`). The
//! accountant tracks the Rényi divergence bound at a grid of integer orders
//! α and converts the composition to an `(ε, δ)` statement with
//! `ε = min_α [ RDP(α) + ln(1/δ) / (α − 1) ]`.
//!
//! For integer α the sampled-Gaussian RDP has the exact binomial form
//! (Mironov et al. 2019, also used by TensorFlow Privacy):
//!
//! ```text
//! A(α) = Σ_{j=0}^{α} C(α,j) (1−q)^{α−j} q^j · exp( (j² − j) / (2σ²) )
//! RDP(α) = ln A(α) / (α − 1)
//! ```

use mdl_tensor::stats::log_sum_exp;

/// Default grid of Rényi orders.
fn default_orders() -> Vec<u32> {
    (2..=64).collect()
}

/// log of the binomial coefficient `C(n, k)` via `ln Γ`.
fn log_binomial(n: u32, k: u32) -> f64 {
    ln_gamma((n + 1) as f64) - ln_gamma((k + 1) as f64) - ln_gamma((n - k + 1) as f64)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// RDP of one sampled-Gaussian step at integer order `alpha`.
///
/// # Panics
///
/// Panics unless `0 <= q <= 1`, `sigma > 0` and `alpha >= 2`.
pub fn rdp_sampled_gaussian(q: f64, sigma: f64, alpha: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0, 1]");
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(alpha >= 2, "order must be at least 2");
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        // plain Gaussian mechanism: RDP(α) = α / (2σ²)
        return alpha as f64 / (2.0 * sigma * sigma);
    }
    let log_q = q.ln();
    let log_1q = (1.0 - q).ln();
    let terms: Vec<f64> = (0..=alpha)
        .map(|j| {
            log_binomial(alpha, j)
                + j as f64 * log_q
                + (alpha - j) as f64 * log_1q
                + (j as f64 * j as f64 - j as f64) / (2.0 * sigma * sigma)
        })
        .collect();
    let log_a = log_sum_exp(&terms);
    (log_a / (alpha as f64 - 1.0)).max(0.0)
}

/// Tracks the RDP of a sequence of sampled-Gaussian releases — the paper's
/// "moments accountant".
///
/// # Examples
///
/// ```
/// use mdl_privacy::accountant::MomentsAccountant;
///
/// let mut acc = MomentsAccountant::new(0.01, 1.1);
/// acc.step(1000);
/// let eps = acc.epsilon(1e-5);
/// assert!(eps > 0.0 && eps < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct MomentsAccountant {
    q: f64,
    sigma: f64,
    orders: Vec<u32>,
    /// accumulated RDP at each order
    rdp: Vec<f64>,
    steps: u64,
}

impl MomentsAccountant {
    /// Creates an accountant for sampling rate `q` and noise multiplier `σ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= q <= 1` and `sigma > 0`.
    pub fn new(q: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0, 1]");
        assert!(sigma > 0.0, "sigma must be positive");
        let orders = default_orders();
        let rdp = vec![0.0; orders.len()];
        Self { q, sigma, orders, rdp, steps: 0 }
    }

    /// Records `n` further mechanism invocations.
    pub fn step(&mut self, n: u64) {
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.rdp[i] += n as f64 * rdp_sampled_gaussian(self.q, self.sigma, alpha);
        }
        self.steps += n;
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The tightest ε achievable at failure probability `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let log_inv_delta = (1.0 / delta).ln();
        self.orders
            .iter()
            .zip(self.rdp.iter())
            .map(|(&alpha, &rdp)| rdp + log_inv_delta / (alpha as f64 - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Convenience: ε after `steps` sampled-Gaussian steps.
pub fn compute_epsilon(q: f64, sigma: f64, steps: u64, delta: f64) -> f64 {
    let mut acc = MomentsAccountant::new(q, sigma);
    acc.step(steps);
    acc.epsilon(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u32 {
            let fact: f64 = (1..n).map(|k| k as f64).product::<f64>().max(1.0);
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln Γ({n}) = {} vs ln({fact})",
                ln_gamma(n as f64)
            );
        }
    }

    #[test]
    fn log_binomial_matches_pascal() {
        assert!((log_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-9);
        assert!((log_binomial(10, 0)).abs() < 1e-9);
        assert!((log_binomial(10, 10)).abs() < 1e-9);
    }

    #[test]
    fn full_batch_matches_plain_gaussian() {
        let sigma = 1.3;
        for alpha in [2u32, 8, 32] {
            let rdp = rdp_sampled_gaussian(1.0, sigma, alpha);
            assert!((rdp - alpha as f64 / (2.0 * sigma * sigma)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_sampling_is_free() {
        assert_eq!(rdp_sampled_gaussian(0.0, 1.0, 4), 0.0);
    }

    #[test]
    fn rdp_monotone_in_q_and_sigma() {
        let base = rdp_sampled_gaussian(0.01, 1.0, 8);
        assert!(rdp_sampled_gaussian(0.05, 1.0, 8) > base, "larger q ⇒ larger RDP");
        assert!(rdp_sampled_gaussian(0.01, 2.0, 8) < base, "larger σ ⇒ smaller RDP");
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let e1 = compute_epsilon(0.01, 1.1, 100, 1e-5);
        let e2 = compute_epsilon(0.01, 1.1, 1000, 1e-5);
        let e3 = compute_epsilon(0.01, 1.1, 10_000, 1e-5);
        assert!(e1 < e2 && e2 < e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // one step at q=0.01 must be far cheaper than one step at q=1
        let sub = compute_epsilon(0.01, 1.0, 1, 1e-5);
        let full = compute_epsilon(1.0, 1.0, 1, 1e-5);
        assert!(sub < full / 4.0, "sub={sub} full={full}");
    }

    #[test]
    fn accountant_in_known_ballpark() {
        // the canonical DP-SGD setting: q=0.01, σ=1.1, T=10 000 (100 epochs).
        // RDP accountants put ε in the mid single digits at δ=1e-5 — orders
        // of magnitude below naive composition.
        let eps = compute_epsilon(0.01, 1.1, 10_000, 1e-5);
        assert!(
            (2.0..9.0).contains(&eps),
            "ε={eps} out of the expected range for the canonical setting"
        );
    }

    #[test]
    fn tighter_than_naive_composition() {
        // naive: ε_total = T · ε_single. The accountant must be much tighter.
        let q = 0.02;
        let sigma = 1.5;
        let steps = 2000;
        let accountant = compute_epsilon(q, sigma, steps, 1e-5);
        let single = crate::mechanism::GaussianMechanism::new(1.0, sigma).epsilon_single_shot(1e-5);
        let naive = single * steps as f64 * q; // even charging only q·T steps
        assert!(accountant < naive / 3.0, "accountant={accountant} naive={naive}");
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn epsilon_rejects_bad_delta() {
        let acc = MomentsAccountant::new(0.1, 1.0);
        let _ = acc.epsilon(0.0);
    }
}
