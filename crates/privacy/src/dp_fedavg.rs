//! User-level differentially private federated averaging (McMahan et al.,
//! paper reference [22]).
//!
//! §II-C lists the four modifications that turn FedAvg into DP-FedAvg, all
//! implemented here:
//!
//! 1. clients are selected **independently with probability p** rather than
//!    as a fixed-size cohort;
//! 2. each client's model delta is **clipped to an L2 bound `S`**;
//! 3. a **bounded-sensitivity weighted estimator** divides by the *expected*
//!    cohort size `p·K` so one user's presence changes the estimate by at
//!    most `S / (p·K)`;
//! 4. **Gaussian noise** `N(0, (z·S / (p·K))²)` is added to the average,
//!    with the moments accountant charging one sampled-Gaussian step of
//!    rate `p` per round.

use crate::accountant::MomentsAccountant;
use crate::mechanism::clip_update;
use mdl_data::Dataset;
use mdl_federated::{MlpSpec, RoundRecord};
use mdl_nn::{fit_classifier, ParamVector, Sgd, TrainConfig};
use mdl_tensor::init::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a DP-FedAvg run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpFedConfig {
    /// Federation rounds.
    pub rounds: usize,
    /// Independent per-round client selection probability `p`.
    pub sample_prob: f64,
    /// Local epochs per selected client.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Client learning rate.
    pub learning_rate: f32,
    /// L2 clip bound `S` on each client's model delta.
    pub clip_norm: f64,
    /// Noise multiplier `z`.
    pub noise_multiplier: f64,
    /// δ for the reported ε.
    pub delta: f64,
    /// Evaluate every this many rounds.
    pub eval_every: usize,
}

impl Default for DpFedConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            sample_prob: 0.5,
            local_epochs: 3,
            batch_size: 16,
            learning_rate: 0.1,
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            delta: 1e-5,
            eval_every: 1,
        }
    }
}

/// Outcome of a DP-FedAvg run.
#[derive(Debug)]
pub struct DpFedRun {
    /// Evaluated rounds.
    pub history: Vec<RoundRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// User-level privacy spent, `(ε, δ)`.
    pub epsilon: f64,
    /// δ used for the ε report.
    pub delta: f64,
    /// Fraction of client deltas clipped across the run.
    pub clip_fraction: f64,
}

impl DpFedRun {
    /// Final test accuracy (0.0 when no round was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map(|r| r.test_accuracy).unwrap_or(0.0)
    }
}

/// Runs DP-FedAvg over pre-partitioned client datasets.
///
/// Setting `noise_multiplier = 0` and `clip_norm = ∞` recovers plain FedAvg
/// with Poisson cohorts (useful as the non-private reference in ablations);
/// in that case the reported ε is infinite.
///
/// # Panics
///
/// Panics if `clients` is empty or `sample_prob` is outside `(0, 1]`.
pub fn run_dp_fedavg(
    spec: &MlpSpec,
    clients: &[Dataset],
    test: &Dataset,
    config: &DpFedConfig,
    rng: &mut StdRng,
) -> DpFedRun {
    assert!(!clients.is_empty(), "need at least one client");
    assert!(
        config.sample_prob > 0.0 && config.sample_prob <= 1.0,
        "sample probability must be in (0, 1]"
    );
    let k = clients.len() as f64;
    let expected_cohort = (config.sample_prob * k).max(1.0);

    let mut global_model = spec.build();
    let mut params = global_model.param_vector();
    let dim = params.len();

    let mut accountant = (config.noise_multiplier > 0.0)
        .then(|| MomentsAccountant::new(config.sample_prob, config.noise_multiplier));
    let mut history = Vec::new();
    let mut clipped = 0u64;
    let mut deltas_seen = 0u64;
    let mut total_bytes = 0u64;

    for round in 1..=config.rounds {
        // 1. independent Poisson selection
        let selected: Vec<usize> =
            (0..clients.len()).filter(|_| rng.gen::<f64>() < config.sample_prob).collect();

        let mut sum_delta = vec![0.0f32; dim];
        for &c in &selected {
            let data = &clients[c];
            let mut local = spec.build_with(&params);
            let mut opt = Sgd::new(config.learning_rate);
            let mut local_rng = StdRng::seed_from_u64(rng.gen());
            let _ = fit_classifier(
                &mut local,
                &mut opt,
                &data.x,
                &data.y,
                &TrainConfig {
                    epochs: config.local_epochs,
                    batch_size: config.batch_size.min(data.len().max(1)),
                    shuffle: true,
                    grad_clip: None,
                    kernel_threads: None,
                    obs: None,
                },
                &mut local_rng,
            );
            // 2. clip the model delta to S
            let mut delta: Vec<f32> =
                local.param_vector().iter().zip(params.iter()).map(|(a, b)| a - b).collect();
            let pre = clip_update(&mut delta, config.clip_norm);
            if pre > config.clip_norm {
                clipped += 1;
            }
            deltas_seen += 1;
            for (s, &d) in sum_delta.iter_mut().zip(delta.iter()) {
                *s += d;
            }
            total_bytes += 8 + 4 * dim as u64;
        }

        // 3. bounded-sensitivity estimator + 4. Gaussian noise
        let noise_std = (config.noise_multiplier * config.clip_norm / expected_cohort) as f32;
        for (p, &s) in params.iter_mut().zip(sum_delta.iter()) {
            let mut avg = s / expected_cohort as f32;
            if noise_std > 0.0 {
                avg += gaussian(rng) * noise_std;
            }
            *p += avg;
        }
        if let Some(acc) = accountant.as_mut() {
            acc.step(1);
        }

        if round % config.eval_every == 0 || round == config.rounds {
            global_model.set_param_vector(&params);
            let acc = global_model.accuracy(&test.x, &test.y);
            history.push(RoundRecord {
                round,
                test_accuracy: acc,
                total_bytes,
                participants: selected.len(),
            });
        }
    }

    DpFedRun {
        history,
        final_params: params,
        epsilon: accountant.map(|a| a.epsilon(config.delta)).unwrap_or(f64::INFINITY),
        delta: config.delta,
        clip_fraction: if deltas_seen == 0 { 0.0 } else { clipped as f64 / deltas_seen as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::partition::{partition_dataset, Partition};
    use mdl_data::synthetic::gaussian_blobs;

    fn setup(rng: &mut StdRng) -> (MlpSpec, Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(500, 3, 0.5, rng);
        let (train, test) = data.split(0.8, rng);
        let clients = partition_dataset(&train, 20, Partition::Iid, rng);
        (MlpSpec::new(vec![2, 12, 3], 11), clients, test)
    }

    #[test]
    fn dp_fedavg_learns_with_moderate_noise() {
        let mut rng = StdRng::seed_from_u64(240);
        let (spec, clients, test) = setup(&mut rng);
        let run = run_dp_fedavg(
            &spec,
            &clients,
            &test,
            &DpFedConfig {
                rounds: 20,
                noise_multiplier: 0.5,
                clip_norm: 2.0,
                learning_rate: 0.2,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(run.final_accuracy() > 0.85, "accuracy={}", run.final_accuracy());
        assert!(run.epsilon.is_finite() && run.epsilon > 0.0);
    }

    #[test]
    fn zero_noise_recovers_plain_fedavg_with_infinite_epsilon() {
        let mut rng = StdRng::seed_from_u64(241);
        let (spec, clients, test) = setup(&mut rng);
        let run = run_dp_fedavg(
            &spec,
            &clients,
            &test,
            &DpFedConfig {
                rounds: 15,
                noise_multiplier: 0.0,
                clip_norm: 1e9,
                learning_rate: 0.2,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(run.epsilon.is_infinite());
        assert!(run.final_accuracy() > 0.9, "accuracy={}", run.final_accuracy());
        assert_eq!(run.clip_fraction, 0.0);
    }

    #[test]
    fn stronger_noise_gives_smaller_epsilon_and_worse_accuracy() {
        let mut rng = StdRng::seed_from_u64(242);
        let (spec, clients, test) = setup(&mut rng);
        let run_with = |z: f64, rng: &mut StdRng| {
            run_dp_fedavg(
                &spec,
                &clients,
                &test,
                &DpFedConfig {
                    rounds: 12,
                    noise_multiplier: z,
                    clip_norm: 1.0,
                    learning_rate: 0.2,
                    ..Default::default()
                },
                rng,
            )
        };
        let mild = run_with(0.3, &mut rng);
        let heavy = run_with(10.0, &mut rng);
        assert!(heavy.epsilon < mild.epsilon, "{} vs {}", heavy.epsilon, mild.epsilon);
        assert!(
            heavy.final_accuracy() <= mild.final_accuracy() + 0.05,
            "heavy noise should not help: {} vs {}",
            heavy.final_accuracy(),
            mild.final_accuracy()
        );
    }

    #[test]
    fn clipping_engages_on_small_bound() {
        let mut rng = StdRng::seed_from_u64(243);
        let (spec, clients, test) = setup(&mut rng);
        let run = run_dp_fedavg(
            &spec,
            &clients,
            &test,
            &DpFedConfig { rounds: 3, clip_norm: 1e-3, ..Default::default() },
            &mut rng,
        );
        assert!(run.clip_fraction > 0.9, "clip_fraction={}", run.clip_fraction);
    }
}
