//! Differentially private SGD (Abadi et al., paper reference [20]):
//! per-example gradient clipping + Gaussian noise + moments accounting.

use crate::accountant::MomentsAccountant;
use crate::mechanism::clip_update;
use mdl_nn::loss::softmax_cross_entropy;
use mdl_nn::{Layer, Mode, ParamVector};
use mdl_tensor::init::gaussian;
use mdl_tensor::Matrix;
use rand::Rng;

/// Hyper-parameters of a DP-SGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSgdConfig {
    /// Passes over the data (in expectation, under Poisson sampling).
    pub epochs: usize,
    /// Expected lot (batch) size `L`; the sampling rate is `q = L / n`.
    pub lot_size: usize,
    /// Per-example gradient clip norm `C`.
    pub clip_norm: f64,
    /// Noise multiplier `σ` (noise std is `σ·C / L`).
    pub noise_multiplier: f64,
    /// Learning rate.
    pub learning_rate: f32,
    /// Failure probability for the reported ε.
    pub delta: f64,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            lot_size: 32,
            clip_norm: 1.0,
            noise_multiplier: 1.1,
            learning_rate: 0.1,
            delta: 1e-5,
        }
    }
}

/// Outcome of a DP-SGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSgdReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Total gradient steps taken.
    pub steps: u64,
    /// Privacy spent, as `(ε, δ)`.
    pub epsilon: f64,
    /// δ used for the ε report.
    pub delta: f64,
    /// Fraction of per-example gradients that hit the clip bound.
    pub clip_fraction: f64,
}

/// Trains `model` with DP-SGD on `(x, labels)`.
///
/// Each step draws a Poisson-sampled lot (`q = lot_size / n`), computes
/// *per-example* gradients, clips each to `C`, averages over the lot size,
/// and perturbs with `N(0, (σC/L)²)` noise — exactly the mechanism the
/// moments accountant expects.
///
/// # Panics
///
/// Panics if the training set is empty or `lot_size` is zero.
pub fn train_dp_sgd(
    model: &mut dyn Layer,
    x: &Matrix,
    labels: &[usize],
    config: &DpSgdConfig,
    rng: &mut impl Rng,
) -> DpSgdReport {
    assert!(!labels.is_empty(), "training set must be non-empty");
    assert!(config.lot_size > 0, "lot size must be positive");
    let n = labels.len();
    let q = (config.lot_size as f64 / n as f64).min(1.0);
    let steps_per_epoch = (n / config.lot_size).max(1);
    let mut accountant = MomentsAccountant::new(q, config.noise_multiplier);

    let dim = model.num_params();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut clipped = 0u64;
    let mut total_examples = 0u64;

    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        let mut lots = 0usize;
        for _ in 0..steps_per_epoch {
            // Poisson-sampled lot
            let lot: Vec<usize> = (0..n).filter(|_| rng.gen::<f64>() < q).collect();
            if lot.is_empty() {
                accountant.step(1);
                continue;
            }
            let mut summed = vec![0.0f32; dim];
            let mut lot_loss = 0.0f64;
            for &i in &lot {
                let xi = Matrix::row_vector(x.row(i));
                model.zero_grad();
                let logits = model.forward(&xi, Mode::Train);
                let (loss, grad) = softmax_cross_entropy(&logits, &[labels[i]]);
                let _ = model.backward(&grad);
                let mut g = model.grad_vector();
                let pre = clip_update(&mut g, config.clip_norm);
                if pre > config.clip_norm {
                    clipped += 1;
                }
                total_examples += 1;
                for (s, &v) in summed.iter_mut().zip(g.iter()) {
                    *s += v;
                }
                lot_loss += loss as f64;
            }
            // noise scaled to the *expected* lot size L, as in the paper
            let noise_std = (config.noise_multiplier * config.clip_norm) as f32;
            let scale = 1.0 / config.lot_size as f32;
            let mut params = model.param_vector();
            for (p, s) in params.iter_mut().zip(summed.iter()) {
                let noisy = (s + gaussian(rng) * noise_std) * scale;
                *p -= config.learning_rate * noisy;
            }
            model.set_param_vector(&params);
            accountant.step(1);
            epoch_loss += lot_loss / lot.len() as f64;
            lots += 1;
        }
        epoch_losses.push(epoch_loss / lots.max(1) as f64);
    }

    DpSgdReport {
        epoch_losses,
        steps: accountant.steps(),
        epsilon: accountant.epsilon(config.delta),
        delta: config.delta,
        clip_fraction: if total_examples == 0 {
            0.0
        } else {
            clipped as f64 / total_examples as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::synthetic::gaussian_blobs;
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, Activation::Relu, rng));
        net.push(Dense::new(8, 2, Activation::Identity, rng));
        net
    }

    #[test]
    fn dp_sgd_learns_under_moderate_noise() {
        let mut rng = StdRng::seed_from_u64(230);
        let data = gaussian_blobs(300, 2, 0.4, &mut rng);
        let mut model = net(&mut rng);
        let report = train_dp_sgd(
            &mut model,
            &data.x,
            &data.y,
            &DpSgdConfig { epochs: 8, noise_multiplier: 1.0, ..Default::default() },
            &mut rng,
        );
        let acc = model.accuracy(&data.x, &data.y);
        assert!(acc > 0.85, "accuracy={acc}");
        assert!(report.epsilon > 0.0 && report.epsilon.is_finite());
        assert_eq!(report.epoch_losses.len(), 8);
    }

    #[test]
    fn epsilon_reflects_noise_level() {
        let mut rng = StdRng::seed_from_u64(231);
        let data = gaussian_blobs(200, 2, 0.4, &mut rng);
        let run = |z: f64, rng: &mut StdRng| {
            let mut model = net(rng);
            train_dp_sgd(
                &mut model,
                &data.x,
                &data.y,
                &DpSgdConfig { epochs: 2, noise_multiplier: z, ..Default::default() },
                rng,
            )
            .epsilon
        };
        let loose = run(0.6, &mut rng);
        let tight = run(2.0, &mut rng);
        assert!(tight < loose, "more noise ⇒ smaller ε: {tight} vs {loose}");
    }

    #[test]
    fn heavy_noise_destroys_learning() {
        // 4 classes: a random decision rule cannot be lucky the way a
        // 2-class separable problem allows
        let mut rng = StdRng::seed_from_u64(232);
        let data = gaussian_blobs(240, 4, 0.3, &mut rng);
        let mut model = Sequential::new();
        model.push(Dense::new(2, 8, Activation::Relu, &mut rng));
        model.push(Dense::new(8, 4, Activation::Identity, &mut rng));
        let _ = train_dp_sgd(
            &mut model,
            &data.x,
            &data.y,
            &DpSgdConfig {
                epochs: 3,
                noise_multiplier: 50.0,
                learning_rate: 0.5,
                ..Default::default()
            },
            &mut rng,
        );
        let acc = model.accuracy(&data.x, &data.y);
        assert!(acc < 0.8, "σ=50 should prevent learning, got {acc}");
    }

    #[test]
    fn clip_fraction_reported() {
        let mut rng = StdRng::seed_from_u64(233);
        let data = gaussian_blobs(100, 2, 0.4, &mut rng);
        let mut model = net(&mut rng);
        let report = train_dp_sgd(
            &mut model,
            &data.x,
            &data.y,
            &DpSgdConfig { epochs: 1, clip_norm: 1e-4, ..Default::default() },
            &mut rng,
        );
        assert!(report.clip_fraction > 0.9, "tiny clip norm should clip everything");
    }
}
