//! # mdl-privacy
//!
//! Privacy-preserving training (§II-C of the paper):
//!
//! - [`mechanism`]: the Gaussian and Laplace mechanisms plus L2 clipping;
//! - [`accountant`]: the **moments accountant** (reference [20]) as an RDP
//!   accountant for the subsampled Gaussian mechanism;
//! - [`sparse_vector`]: the sparse vector technique used by reference [16];
//! - [`dp_sgd`]: per-example-clipped, noised SGD with privacy accounting;
//! - [`dp_fedavg`]: user-level DP federated averaging with the four
//!   modifications of reference [22] (Poisson selection, delta clipping,
//!   bounded-sensitivity estimator, server-side Gaussian noise).
//!
//! # Examples
//!
//! ```
//! use mdl_privacy::accountant::compute_epsilon;
//!
//! // canonical DP-SGD setting: q = 0.01, σ = 1.1, 10 000 steps
//! let eps = compute_epsilon(0.01, 1.1, 10_000, 1e-5);
//! assert!(eps < 9.0, "the accountant is tight: ε = {eps}");
//! ```

#![warn(missing_docs)]

pub mod accountant;
pub mod dp_fedavg;
pub mod dp_sgd;
pub mod mechanism;
pub mod sparse_vector;

pub use accountant::{compute_epsilon, rdp_sampled_gaussian, MomentsAccountant};
pub use dp_fedavg::{run_dp_fedavg, DpFedConfig, DpFedRun};
pub use dp_sgd::{train_dp_sgd, DpSgdConfig, DpSgdReport};
pub use mechanism::{clip_update, GaussianMechanism, LaplaceMechanism};
pub use sparse_vector::{SparseVector, SvtAnswer};

#[cfg(test)]
mod proptests {
    use crate::accountant::{compute_epsilon, rdp_sampled_gaussian};
    use crate::mechanism::clip_update;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn rdp_is_nonnegative_and_monotone_in_alpha(
            q_pct in 1u32..50,
            sigma_x10 in 5u32..40,
        ) {
            let q = q_pct as f64 / 100.0;
            let sigma = sigma_x10 as f64 / 10.0;
            let mut prev = 0.0;
            for alpha in 2u32..20 {
                let r = rdp_sampled_gaussian(q, sigma, alpha);
                prop_assert!(r >= 0.0);
                prop_assert!(r >= prev - 1e-12, "RDP must be non-decreasing in α");
                prev = r;
            }
        }

        #[test]
        fn epsilon_composes_subadditively_vs_linear(
            steps in 10u64..2000,
            q_pct in 1u32..20,
        ) {
            let q = q_pct as f64 / 100.0;
            let one = compute_epsilon(q, 1.2, 1, 1e-5);
            let many = compute_epsilon(q, 1.2, steps, 1e-5);
            // strong composition: far better than steps × ε_single
            prop_assert!(many <= one * steps as f64 + 1e-9);
            prop_assert!(many >= 0.0);
        }

        #[test]
        fn clipping_is_idempotent(
            mut v in prop::collection::vec(-100f32..100.0, 1..64),
            bound_x10 in 1u32..100,
        ) {
            let bound = bound_x10 as f64 / 10.0;
            clip_update(&mut v, bound);
            let once = v.clone();
            clip_update(&mut v, bound);
            for (a, b) in once.iter().zip(v.iter()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
