//! Basic differential-privacy mechanisms (§II-C).

use mdl_tensor::init::gaussian;
use rand::Rng;

/// The Gaussian mechanism: adds `N(0, (σ·sensitivity)²)` noise per coordinate.
///
/// # Examples
///
/// ```
/// use mdl_privacy::GaussianMechanism;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mech = GaussianMechanism::new(1.0, 1.1);
/// let mut values = vec![0.5_f32; 8];
/// mech.perturb(&mut values, &mut rng);
/// assert!(mech.epsilon_single_shot(1e-5) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMechanism {
    /// L2 sensitivity of the query being privatised.
    pub sensitivity: f64,
    /// Noise multiplier σ (std of the noise is `σ · sensitivity`).
    pub noise_multiplier: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn new(sensitivity: f64, noise_multiplier: f64) -> Self {
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(noise_multiplier > 0.0, "noise multiplier must be positive");
        Self { sensitivity, noise_multiplier }
    }

    /// Noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sensitivity * self.noise_multiplier
    }

    /// Adds calibrated noise to every coordinate in place.
    pub fn perturb(&self, values: &mut [f32], rng: &mut impl Rng) {
        let sigma = self.sigma() as f32;
        for v in values.iter_mut() {
            *v += gaussian(rng) * sigma;
        }
    }

    /// Classic analytic `(ε, δ)` guarantee of a *single* release:
    /// `σ ≥ sensitivity · sqrt(2 ln(1.25/δ)) / ε`. Returns the ε this
    /// mechanism provides at the given δ (inverting that bound).
    ///
    /// The moments accountant gives much tighter *composed* bounds; this is
    /// the single-shot reference.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn epsilon_single_shot(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        (2.0 * (1.25 / delta).ln()).sqrt() / self.noise_multiplier
    }
}

/// The Laplace mechanism: adds `Lap(sensitivity / ε)` noise per coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    /// L1 sensitivity of the query being privatised.
    pub sensitivity: f64,
    /// Privacy budget ε of one release.
    pub epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn new(sensitivity: f64, epsilon: f64) -> Self {
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self { sensitivity, epsilon }
    }

    /// The scale parameter `b = sensitivity / ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Draws one Laplace sample via inverse-CDF.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale() * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
    }

    /// Adds calibrated noise to every coordinate in place.
    pub fn perturb(&self, values: &mut [f32], rng: &mut impl Rng) {
        for v in values.iter_mut() {
            *v += self.sample(rng) as f32;
        }
    }
}

/// Clips `update` to L2 norm `clip_norm` and reports the pre-clip norm.
///
/// This is the sensitivity-bounding step of DP-SGD and DP-FedAvg.
pub fn clip_update(update: &mut [f32], clip_norm: f64) -> f64 {
    let norm = mdl_tensor::linalg::l2_norm(update);
    mdl_tensor::linalg::clip_l2(update, clip_norm);
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_noise_scale_is_correct() {
        let mut rng = StdRng::seed_from_u64(210);
        let m = GaussianMechanism::new(2.0, 1.5);
        assert_eq!(m.sigma(), 3.0);
        let n = 20_000;
        let mut values = vec![0.0f32; n];
        m.perturb(&mut values, &mut rng);
        let var: f64 = values.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn gaussian_single_shot_epsilon_monotone_in_sigma() {
        let loose = GaussianMechanism::new(1.0, 0.5).epsilon_single_shot(1e-5);
        let tight = GaussianMechanism::new(1.0, 4.0).epsilon_single_shot(1e-5);
        assert!(tight < loose, "more noise ⇒ smaller ε: {tight} vs {loose}");
    }

    #[test]
    fn laplace_scale_and_spread() {
        let mut rng = StdRng::seed_from_u64(211);
        let m = LaplaceMechanism::new(1.0, 0.5);
        assert_eq!(m.scale(), 2.0);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        // var of Laplace(b) is 2b² = 8
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 8.0).abs() < 0.6, "var={var}");
    }

    #[test]
    fn clip_update_bounds_and_reports() {
        let mut v = vec![3.0f32, 4.0];
        let pre = clip_update(&mut v, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((mdl_tensor::linalg::l2_norm(&v) - 1.0).abs() < 1e-5);
        let mut w = vec![0.1f32, 0.1];
        let pre_w = clip_update(&mut w, 1.0);
        assert!(pre_w < 1.0);
        assert_eq!(w, vec![0.1, 0.1]);
    }

    #[test]
    #[should_panic(expected = "noise multiplier")]
    fn rejects_zero_noise() {
        let _ = GaussianMechanism::new(1.0, 0.0);
    }
}
