//! The sparse vector technique (AboveThreshold), used by Shokri &
//! Shmatikov's privacy-preserving distributed SGD (paper reference [16]) to
//! privately decide *which* gradients are large enough to upload.

use crate::mechanism::LaplaceMechanism;
use rand::Rng;

/// Outcome of one sparse-vector query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvtAnswer {
    /// The (noisy) query exceeded the (noisy) threshold.
    Above,
    /// It did not.
    Below,
    /// The positive-answer budget is exhausted; no information released.
    Exhausted,
}

/// AboveThreshold with a budget of `c` positive answers.
///
/// Standard split: half the budget noises the threshold, half noises the
/// queries; the threshold is re-noised after every positive answer.
#[derive(Debug)]
pub struct SparseVector {
    threshold: f64,
    epsilon: f64,
    sensitivity: f64,
    max_positives: usize,
    positives: usize,
    noisy_threshold: f64,
}

impl SparseVector {
    /// Creates an AboveThreshold instance.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon`, `sensitivity` or `max_positives` is non-positive.
    pub fn new(
        threshold: f64,
        epsilon: f64,
        sensitivity: f64,
        max_positives: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(max_positives > 0, "need a positive answer budget");
        let mut sv = Self {
            threshold,
            epsilon,
            sensitivity,
            max_positives,
            positives: 0,
            noisy_threshold: 0.0,
        };
        sv.renoise_threshold(rng);
        sv
    }

    fn renoise_threshold(&mut self, rng: &mut impl Rng) {
        let lap = LaplaceMechanism::new(
            self.sensitivity,
            self.epsilon / (2.0 * self.max_positives as f64),
        );
        self.noisy_threshold = self.threshold + lap.sample(rng);
    }

    /// Number of positive answers released so far.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// `true` once the positive budget is spent.
    pub fn is_exhausted(&self) -> bool {
        self.positives >= self.max_positives
    }

    /// Tests one query value against the noisy threshold.
    pub fn query(&mut self, value: f64, rng: &mut impl Rng) -> SvtAnswer {
        if self.is_exhausted() {
            return SvtAnswer::Exhausted;
        }
        let lap = LaplaceMechanism::new(
            2.0 * self.sensitivity,
            self.epsilon / (2.0 * self.max_positives as f64),
        );
        if value + lap.sample(rng) >= self.noisy_threshold {
            self.positives += 1;
            if !self.is_exhausted() {
                self.renoise_threshold(rng);
            }
            SvtAnswer::Above
        } else {
            SvtAnswer::Below
        }
    }

    /// Runs the whole stream, returning the indices answered `Above`.
    pub fn select_indices(&mut self, values: &[f64], rng: &mut impl Rng) -> Vec<usize> {
        values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (self.query(v, rng) == SvtAnswer::Above).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clearly_separated_queries_are_classified() {
        let mut rng = StdRng::seed_from_u64(220);
        // huge ε ⇒ almost no noise
        let mut sv = SparseVector::new(10.0, 1e6, 1.0, 5, &mut rng);
        assert_eq!(sv.query(100.0, &mut rng), SvtAnswer::Above);
        assert_eq!(sv.query(-100.0, &mut rng), SvtAnswer::Below);
        assert_eq!(sv.positives(), 1);
    }

    #[test]
    fn budget_exhausts() {
        let mut rng = StdRng::seed_from_u64(221);
        let mut sv = SparseVector::new(0.0, 1e6, 1.0, 2, &mut rng);
        assert_eq!(sv.query(10.0, &mut rng), SvtAnswer::Above);
        assert_eq!(sv.query(10.0, &mut rng), SvtAnswer::Above);
        assert!(sv.is_exhausted());
        assert_eq!(sv.query(10.0, &mut rng), SvtAnswer::Exhausted);
    }

    #[test]
    fn select_indices_picks_large_values() {
        let mut rng = StdRng::seed_from_u64(222);
        let mut sv = SparseVector::new(5.0, 1e6, 1.0, 10, &mut rng);
        let values = [0.0, 9.0, 1.0, 8.0, 2.0];
        let picked = sv.select_indices(&values, &mut rng);
        assert_eq!(picked, vec![1, 3]);
    }

    #[test]
    fn low_epsilon_makes_noisy_decisions() {
        // with tiny ε the answers near the threshold become unreliable —
        // check that both outcomes occur across seeds
        let mut above = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sv = SparseVector::new(0.0, 0.05, 1.0, 1, &mut rng);
            if sv.query(0.5, &mut rng) == SvtAnswer::Above {
                above += 1;
            }
        }
        assert!(above > 2 && above < 38, "answers should be noisy: {above}/40");
    }
}
