//! Sharded multi-replica serving fleet with SLO-classed admission,
//! work stealing and continuous plan-cached batching — in virtual time.
//!
//! The threaded [`crate::server`] answers real requests on real threads,
//! which makes its latencies honest and its schedules unrepeatable. This
//! module is the other half of the story: a **deterministic,
//! event-driven fleet engine** that executes the same scheduling policy
//! (class-ordered admission, per-replica queues, work stealing,
//! continuous batching against a per-worker plan cache) under a virtual
//! nanosecond clock, so the policy itself can be property-tested and
//! bench-floored bit-for-bit. The division of labour mirrors
//! `mdl-sim`'s relationship to the real federated trainer.
//!
//! # Determinism contract
//!
//! For a fixed offered stream (see [`crate::loadgen::request_stream`])
//! and config:
//!
//! * **Admission is a pure function of the schedule.** Arrivals are
//!   grouped into fixed windows of `admit_window_ns`; at each window
//!   close they are ordered by `(class, arrival index)` and the first
//!   `admit_budget` admitted, the rest shed. The budget comes from
//!   config — never from replica capacity — so per-class
//!   admitted/served/shed counters are **bit-identical for any replica
//!   count, worker count and `MDL_THREADS` value**.
//! * **Answers are schedule-independent.** Kernel results are
//!   bit-identical per row regardless of batch composition (the repo's
//!   standing guarantee), so every response's argmax is the same whether
//!   a request was batched by the fixed coalescer, refilled by the
//!   continuous batcher, or stolen by a neighbouring replica.
//! * Only **latencies** (and batch shapes, steal counts) legitimately
//!   depend on fleet size — that is the dimension the capacity knobs are
//!   for, and the one the 10k-rps experiment floors.
//!
//! Shedding happens at window close, before any replica sees the
//! request: a shed `BestEffort` request costs the fleet nothing but the
//! admission sort, which is how 10k offered rps stays survivable.

use crate::loadgen::RequestRecord;
use crate::slo::SloClass;
use mdl_nn::{negotiated_rows, Layer, PlanCache, PlanLookup, PlanModel, PlanOptions, Sequential};
use mdl_obs::{Buckets, Obs};
use mdl_tensor::Matrix;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// How a worker fills a batch from the class-ordered queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Classic coalescer: drain up to `max_batch` requests and dispatch,
    /// whatever odd shape that produces.
    Fixed,
    /// Continuous batching: pick the batch shape from the power-of-two
    /// ladder ([`negotiated_rows`]) and the shapes already compiled in
    /// the per-worker plan cache, so steady-state refills run on cached
    /// zero-allocation plans instead of compiling one per odd shape.
    Continuous,
}

/// Configuration for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replica pools the model is sharded across (requests hash to
    /// `index % replicas`). Must be ≥ 1.
    pub replicas: usize,
    /// Workers per replica pool. Must be ≥ 1.
    pub workers_per_replica: usize,
    /// Maximum rows per dispatched batch.
    pub max_batch: usize,
    /// Admission window length in virtual nanoseconds.
    pub admit_window_ns: u64,
    /// Requests admitted per window, in class order; the rest shed.
    /// Deliberately a config knob rather than a capacity estimate — see
    /// the module-level determinism contract.
    pub admit_budget: usize,
    /// Batch-shape policy.
    pub policy: BatchPolicy,
    /// Virtual device throughput in multiply-accumulates per second.
    /// The default models a cloud server's *sustained* serving rate
    /// (framework overhead included), calibrated so virtual batch
    /// service times land in the same regime the threaded server
    /// measures on this hardware (~5 ms for a batch of 8 on the 9.6M-MAC
    /// experiment model).
    pub macs_per_sec: f64,
    /// Fixed per-batch dispatch overhead in virtual nanoseconds.
    pub dispatch_overhead_ns: u64,
    /// Per-worker plan cache capacity.
    pub plan_cache_cap: usize,
    /// Model version used for plan-cache keys.
    pub model_version: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            workers_per_replica: 2,
            max_batch: 8,
            admit_window_ns: 1_000_000, // 1 ms
            admit_budget: 16,
            policy: BatchPolicy::Continuous,
            macs_per_sec: 2.0e10,
            dispatch_overhead_ns: 50_000,
            plan_cache_cap: 16,
            model_version: 1,
        }
    }
}

/// What happened to one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Index in the offered stream.
    pub index: u32,
    /// SLO class the request arrived with.
    pub class: SloClass,
    /// Whether the request was admitted and served (vs shed).
    pub served: bool,
    /// Virtual latency: completion (or shed decision) minus arrival.
    pub latency_ns: u64,
    /// Argmax of the model output for served requests, `None` for shed.
    pub argmax: Option<usize>,
    /// Replica whose worker ran the batch, `None` for shed.
    pub replica: Option<usize>,
    /// Rows in the batch this request was served in (0 for shed).
    pub batch_rows: usize,
}

/// Per-class counters and latency samples.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Requests offered with this class.
    pub offered: usize,
    /// Requests admitted and served.
    pub served: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Virtual latencies of served requests, sorted ascending.
    pub latency_ns: Vec<u64>,
    /// Virtual latencies of shed requests (arrival → shed decision),
    /// sorted ascending.
    pub shed_latency_ns: Vec<u64>,
}

impl ClassStats {
    /// Exact `p`-th percentile of the served latencies (`0 < p <= 100`),
    /// in virtual nanoseconds; 0 when nothing was served.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.latency_ns.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latency_ns.len() as f64).ceil().max(1.0) as usize;
        self.latency_ns[rank.min(self.latency_ns.len()) - 1]
    }
}

/// Everything a fleet run produced.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One outcome per offered request, ordered by stream index.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-class stats, indexed by [`SloClass::rank`].
    pub classes: [ClassStats; SloClass::COUNT],
    /// Virtual time of the last event.
    pub virtual_elapsed_ns: u64,
    /// Batches dispatched by a worker whose own replica queue was empty.
    pub steals: u64,
    /// Total batches dispatched.
    pub batches: u64,
    /// Mean rows per dispatched batch.
    pub mean_batch_rows: f64,
    /// Plan-cache hits across all workers.
    pub plan_hits: u64,
    /// Plan-cache misses (fresh compiles or rejections).
    pub plan_misses: u64,
}

impl FleetReport {
    /// Stats for one class.
    pub fn class(&self, class: SloClass) -> &ClassStats {
        &self.classes[class.rank()]
    }

    /// FNV-1a digest over the **schedule-invariant** results: per-class
    /// counters plus every request's `(index, class, served, argmax)`.
    /// Latencies, steal counts and batch shapes are deliberately
    /// excluded — they vary with fleet size; this digest must not.
    pub fn result_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for c in &self.classes {
            eat(c.offered as u64);
            eat(c.served as u64);
            eat(c.shed as u64);
        }
        for o in &self.outcomes {
            eat(o.index as u64);
            eat(o.class.rank() as u64);
            eat(o.served as u64);
            eat(o.argmax.map_or(u64::MAX, |a| a as u64));
        }
        h
    }

    /// Exports the run into an observability registry under the same
    /// `serve.class.*` names the threaded server records, plus
    /// `serve.fleet.*` scheduler counters, so fleet experiments and real
    /// serving share one dashboard vocabulary.
    pub fn export(&self, obs: &Obs) {
        let r = obs.registry();
        for class in SloClass::ALL {
            let stats = self.class(class);
            r.counter(class.completed_metric()).add(stats.served as u64);
            r.counter(class.shed_metric()).add(stats.shed as u64);
            let hist = r.histogram(class.latency_metric(), Buckets::Pow2);
            for &ns in &stats.latency_ns {
                hist.record(ns / 1_000);
            }
        }
        r.counter("serve.fleet.batches").add(self.batches);
        r.counter("serve.fleet.steals").add(self.steals);
        r.counter("serve.fleet.plan_hits").add(self.plan_hits);
        r.counter("serve.fleet.plan_misses").add(self.plan_misses);
    }
}

/// Event kinds, ordered only so the heap tuple derives `Ord`; the `seq`
/// tie-breaker is unique, so event-kind order is never consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// An admission window closed.
    Close,
    /// Worker `worker` of replica `replica` finished its batch.
    Done { replica: usize, worker: usize },
}

struct InFlight {
    indices: Vec<u32>,
    argmaxes: Vec<usize>,
}

struct Replica {
    /// One FIFO per class, indexed by rank.
    queues: [VecDeque<u32>; SloClass::COUNT],
}

impl Replica {
    fn backlog(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// The deterministic virtual-time fleet engine. See the module docs.
pub struct FleetEngine<'a> {
    model: &'a Sequential,
    inputs: &'a Matrix,
    config: FleetConfig,
    macs_per_row: u64,
}

impl<'a> FleetEngine<'a> {
    /// Builds an engine serving `model` with input rows drawn from
    /// `inputs` (requests index into it via [`RequestRecord::row`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has no rows or the config has zero replicas or
    /// workers.
    pub fn new(model: &'a Sequential, inputs: &'a Matrix, config: FleetConfig) -> Self {
        assert!(inputs.rows() > 0, "need at least one input row");
        assert!(config.replicas >= 1, "need at least one replica");
        assert!(config.workers_per_replica >= 1, "need at least one worker per replica");
        let macs_per_row = model.total_macs();
        Self { model, inputs, config, macs_per_row }
    }

    fn service_ns(&self, rows: usize) -> u64 {
        let macs = self.macs_per_row.saturating_mul(rows as u64) as f64;
        self.config.dispatch_overhead_ns + (macs / self.config.macs_per_sec.max(1.0) * 1e9) as u64
    }

    /// Runs the offered `stream` to completion and reports what
    /// happened. Pure: same stream + same config ⇒ same report (up to
    /// the schedule-invariant digest, same for *any* fleet size).
    pub fn run(&self, stream: &[RequestRecord]) -> FleetReport {
        let cfg = &self.config;

        // ---- group arrivals into admission windows --------------------
        let window = cfg.admit_window_ns.max(1);
        let mut windows: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for rec in stream {
            windows.entry(rec.arrival_ns / window).or_default().push(rec.index);
        }

        // min-heap over (time, seq, event); seq makes ordering total and
        // FIFO at equal times. Window closes are seeded first, so at an
        // exact tie admission precedes completion — fixed, documented,
        // and irrelevant to the invariant counters either way.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for &w in windows.keys() {
            heap.push(std::cmp::Reverse(((w + 1) * window, seq, Ev::Close)));
            seq += 1;
        }

        // ---- fleet state ---------------------------------------------
        let mut replicas: Vec<Replica> = (0..cfg.replicas)
            .map(|_| Replica { queues: std::array::from_fn(|_| VecDeque::new()) })
            .collect();
        let workers = cfg.replicas * cfg.workers_per_replica;
        let mut in_flight: Vec<Option<InFlight>> = (0..workers).map(|_| None).collect();
        let mut plan_caches: Vec<PlanCache> =
            (0..workers).map(|_| PlanCache::new(cfg.plan_cache_cap.max(1))).collect();
        let mut batch_x = Matrix::default();
        let mut batch_out = Matrix::default();

        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; stream.len()];
        let mut classes: [ClassStats; SloClass::COUNT] = Default::default();
        for rec in stream {
            classes[rec.class.rank()].offered += 1;
        }
        let mut report = FleetReport::default();
        let mut batch_rows_sum = 0u64;

        let mut window_iter = windows.into_values();

        // ---- event loop ----------------------------------------------
        while let Some(std::cmp::Reverse((now, _, ev))) = heap.pop() {
            report.virtual_elapsed_ns = report.virtual_elapsed_ns.max(now);
            match ev {
                Ev::Close => {
                    let mut arrivals = window_iter.next().expect("one close per window");
                    // class-ordered admission: sort by (class, index) and
                    // admit the first `admit_budget`
                    arrivals.sort_unstable_by_key(|&i| {
                        (stream[i as usize].class, stream[i as usize].index)
                    });
                    for (pos, &idx) in arrivals.iter().enumerate() {
                        let rec = &stream[idx as usize];
                        if pos < cfg.admit_budget {
                            let r = rec.index as usize % cfg.replicas;
                            replicas[r].queues[rec.class.rank()].push_back(rec.index);
                        } else {
                            let latency_ns = now.saturating_sub(rec.arrival_ns);
                            let s = &mut classes[rec.class.rank()];
                            s.shed += 1;
                            s.shed_latency_ns.push(latency_ns);
                            outcomes[idx as usize] = Some(RequestOutcome {
                                index: rec.index,
                                class: rec.class,
                                served: false,
                                latency_ns,
                                argmax: None,
                                replica: None,
                                batch_rows: 0,
                            });
                        }
                    }
                    // wake every idle worker in fixed order
                    for w in 0..workers {
                        if in_flight[w].is_none() {
                            self.try_dispatch(
                                w,
                                now,
                                stream,
                                &mut replicas,
                                &mut in_flight,
                                &mut plan_caches,
                                &mut batch_x,
                                &mut batch_out,
                                &mut heap,
                                &mut seq,
                                &mut report,
                                &mut batch_rows_sum,
                            );
                        }
                    }
                }
                Ev::Done { replica, worker } => {
                    let w = replica * cfg.workers_per_replica + worker;
                    let flight = in_flight[w].take().expect("done without a batch");
                    let rows = flight.indices.len();
                    for (&idx, &am) in flight.indices.iter().zip(&flight.argmaxes) {
                        let rec = &stream[idx as usize];
                        let latency_ns = now.saturating_sub(rec.arrival_ns);
                        let s = &mut classes[rec.class.rank()];
                        s.served += 1;
                        s.latency_ns.push(latency_ns);
                        outcomes[idx as usize] = Some(RequestOutcome {
                            index: rec.index,
                            class: rec.class,
                            served: true,
                            latency_ns,
                            argmax: Some(am),
                            replica: Some(replica),
                            batch_rows: rows,
                        });
                    }
                    self.try_dispatch(
                        w,
                        now,
                        stream,
                        &mut replicas,
                        &mut in_flight,
                        &mut plan_caches,
                        &mut batch_x,
                        &mut batch_out,
                        &mut heap,
                        &mut seq,
                        &mut report,
                        &mut batch_rows_sum,
                    );
                }
            }
        }

        for c in &mut classes {
            c.latency_ns.sort_unstable();
            c.shed_latency_ns.sort_unstable();
        }
        report.outcomes =
            outcomes.into_iter().map(|o| o.expect("every offered request resolves")).collect();
        report.classes = classes;
        report.mean_batch_rows =
            if report.batches == 0 { 0.0 } else { batch_rows_sum as f64 / report.batches as f64 };
        report
    }

    /// Picks and runs one batch for worker slot `w` if any work exists.
    #[allow(clippy::too_many_arguments)]
    fn try_dispatch(
        &self,
        w: usize,
        now: u64,
        stream: &[RequestRecord],
        replicas: &mut [Replica],
        in_flight: &mut [Option<InFlight>],
        plan_caches: &mut [PlanCache],
        batch_x: &mut Matrix,
        batch_out: &mut Matrix,
        heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64, Ev)>>,
        seq: &mut u64,
        report: &mut FleetReport,
        batch_rows_sum: &mut u64,
    ) {
        let cfg = &self.config;
        let home = w / cfg.workers_per_replica;
        let worker = w % cfg.workers_per_replica;

        // source: own replica, else steal from the deepest backlog
        // (tie: lowest replica index) — taking from the head of the
        // victim's highest-class queue never inverts class order.
        let (source, stolen) = if replicas[home].backlog() > 0 {
            (home, false)
        } else {
            let victim = (0..replicas.len())
                .filter(|&r| replicas[r].backlog() > 0)
                .max_by_key(|&r| (replicas[r].backlog(), std::cmp::Reverse(r)));
            match victim {
                Some(v) => (v, true),
                None => return,
            }
        };

        let backlog = replicas[source].backlog();
        let rows = match cfg.policy {
            BatchPolicy::Fixed => backlog.min(cfg.max_batch),
            BatchPolicy::Continuous => {
                // refill on the pow2 ladder, preferring shapes this
                // worker has already compiled (zero-alloc steady state)
                let ladder = negotiated_rows(backlog, cfg.max_batch);
                let cached_best = plan_caches[w]
                    .shapes_for(cfg.model_version, self.inputs.cols())
                    .into_iter()
                    .filter(|&s| s <= backlog.min(cfg.max_batch))
                    .max()
                    .unwrap_or(0);
                ladder.max(cached_best)
            }
        };
        if rows == 0 {
            return;
        }

        // drain class-ordered: highest class first, FIFO within a class
        let mut indices = Vec::with_capacity(rows);
        'fill: for q in &mut replicas[source].queues {
            while indices.len() < rows {
                match q.pop_front() {
                    Some(i) => indices.push(i),
                    None => continue 'fill,
                }
            }
            break;
        }

        // run the batch now (results are completion-time-independent);
        // deliver at the virtual completion time
        batch_x.resize_to(indices.len(), self.inputs.cols());
        for (r, &idx) in indices.iter().enumerate() {
            let row = stream[idx as usize].row as usize % self.inputs.rows();
            batch_x.row_mut(r).copy_from_slice(self.inputs.row(row));
        }
        let lookup = plan_caches[w].run(
            cfg.model_version,
            PlanModel::F32(self.model),
            batch_x,
            batch_out,
            PlanOptions::default(),
            |_| true,
        );
        if lookup.ran() {
            report.plan_hits += u64::from(matches!(lookup, PlanLookup::Hit));
            report.plan_misses += u64::from(!matches!(lookup, PlanLookup::Hit));
        } else {
            report.plan_misses += 1;
            *batch_out = self.model.forward_eval(batch_x);
        }
        let argmaxes = batch_out.argmax_rows();

        report.batches += 1;
        report.steals += u64::from(stolen);
        *batch_rows_sum += indices.len() as u64;

        let done = now + self.service_ns(indices.len());
        in_flight[w] = Some(InFlight { indices, argmaxes });
        heap.push(std::cmp::Reverse((done, *seq, Ev::Done { replica: home, worker })));
        *seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::request_stream;
    use mdl_nn::{Activation, Dense, Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new();
        net.push(Dense::new(8, 32, Activation::Relu, &mut rng));
        net.push(Dense::new(32, 4, Activation::Identity, &mut rng));
        net
    }

    fn inputs() -> Matrix {
        Matrix::from_fn(16, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin())
    }

    fn mix() -> Vec<SloClass> {
        vec![SloClass::Interactive, SloClass::Standard, SloClass::BestEffort, SloClass::BestEffort]
    }

    #[test]
    fn every_offered_request_resolves_exactly_once() {
        let (model, inputs) = (model(), inputs());
        let stream = request_stream(3, 4000.0, 200, &mix(), inputs.rows());
        let engine = FleetEngine::new(&model, &inputs, FleetConfig::default());
        let report = engine.run(&stream);
        assert_eq!(report.outcomes.len(), 200);
        let served: usize = report.classes.iter().map(|c| c.served).sum();
        let shed: usize = report.classes.iter().map(|c| c.shed).sum();
        assert_eq!(served + shed, 200, "no lost or duplicated requests");
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index as usize, i);
            assert_eq!(o.served, o.argmax.is_some());
        }
    }

    #[test]
    fn overload_sheds_in_reverse_class_order() {
        let (model, inputs) = (model(), inputs());
        // exactly 20 arrivals per 1 ms window (5 interactive, 5 standard,
        // 10 best-effort) against a budget of 12: every window admits all
        // interactive + standard and sheds 8 best-effort
        let classes = mix();
        let stream: Vec<RequestRecord> = (0..300u32)
            .map(|i| RequestRecord {
                index: i,
                arrival_ns: i as u64 * 50_000,
                class: classes[i as usize % classes.len()],
                row: i % inputs.rows() as u32,
            })
            .collect();
        let config = FleetConfig { admit_budget: 12, ..FleetConfig::default() };
        let report = FleetEngine::new(&model, &inputs, config).run(&stream);
        assert!(report.class(SloClass::BestEffort).shed > 0, "overload must shed");
        assert_eq!(report.class(SloClass::Interactive).shed, 0);
        assert_eq!(report.class(SloClass::Standard).shed, 0);
        // 8 of 10 best-effort shed per full window
        assert_eq!(report.class(SloClass::BestEffort).shed, 8 * 300 / 20);
    }

    #[test]
    fn digest_is_invariant_across_fleet_shapes_and_policies() {
        let (model, inputs) = (model(), inputs());
        let stream = request_stream(7, 12_000.0, 300, &mix(), inputs.rows());
        let base = FleetConfig { admit_budget: 10, ..FleetConfig::default() };
        let digest =
            |cfg: FleetConfig| FleetEngine::new(&model, &inputs, cfg).run(&stream).result_digest();
        let reference = digest(base.clone());
        for replicas in [1usize, 3, 4] {
            for workers in [1usize, 2] {
                let cfg = FleetConfig { replicas, workers_per_replica: workers, ..base.clone() };
                assert_eq!(digest(cfg), reference, "replicas={replicas} workers={workers}");
            }
        }
        let fixed = FleetConfig { policy: BatchPolicy::Fixed, ..base.clone() };
        assert_eq!(digest(fixed), reference, "continuous vs fixed coalescer");
    }

    #[test]
    fn served_argmaxes_match_the_dynamic_path() {
        let (mut model, inputs) = (model(), inputs());
        let stream = request_stream(9, 6000.0, 120, &mix(), inputs.rows());
        let report = FleetEngine::new(&model, &inputs, FleetConfig::default()).run(&stream);
        for o in report.outcomes.iter().filter(|o| o.served) {
            let row = stream[o.index as usize].row as usize % inputs.rows();
            let x = Matrix::from_rows(&[inputs.row(row)]);
            let y = model.forward(&x, Mode::Eval);
            assert_eq!(o.argmax, Some(y.argmax_rows()[0]), "request {}", o.index);
        }
    }

    #[test]
    fn work_stealing_fires_when_shards_are_imbalanced() {
        let (model, inputs) = (model(), inputs());
        // all requests hash to replica 0 (indices stride 4, replicas 4
        // would spread them; use replicas 4 and a stream whose admitted
        // indices cluster) — simpler: one class, replicas 4, few
        // requests per window so replica 0..3 get uneven turns
        let stream = request_stream(13, 9000.0, 240, &[SloClass::Standard], inputs.rows());
        let config = FleetConfig {
            replicas: 4,
            workers_per_replica: 1,
            admit_budget: 64,
            ..FleetConfig::default()
        };
        let report = FleetEngine::new(&model, &inputs, config).run(&stream);
        assert!(report.steals > 0, "imbalanced shards should trigger stealing");
        let served: usize = report.classes.iter().map(|c| c.served).sum();
        assert_eq!(served, 240, "stealing must not lose requests");
    }

    #[test]
    fn export_lands_class_counters_in_the_registry() {
        let (model, inputs) = (model(), inputs());
        let stream = request_stream(17, 15_000.0, 160, &mix(), inputs.rows());
        let config = FleetConfig { admit_budget: 6, ..FleetConfig::default() };
        let report = FleetEngine::new(&model, &inputs, config).run(&stream);
        let obs = Obs::sim();
        report.export(&obs);
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("serve.class.interactive.completed"),
            Some(report.class(SloClass::Interactive).served as u64)
        );
        assert_eq!(
            snap.counter("serve.class.best_effort.shed"),
            Some(report.class(SloClass::BestEffort).shed as u64)
        );
        assert_eq!(snap.counter("serve.fleet.batches"), Some(report.batches));
    }
}
