//! `mdl-serve` — a concurrent inference-serving runtime for trained
//! `mdl-nn` models, closing the deployment loop of *Deep Learning
//! towards Mobile Applications* (ICDCS 2018): after a model is trained
//! (federated or central), compressed and placed, something has to
//! actually answer requests from a fleet of heterogeneous devices.
//!
//! The runtime combines four mechanisms:
//!
//! * **Versioned registry with atomic hot swap** ([`registry`]) — the
//!   current model lives behind an `Arc`; a swap installs a new version
//!   without interrupting in-flight work, so models can be updated
//!   "without shipping a new app".
//! * **Dynamic micro-batching** ([`server`]) — queued requests are
//!   coalesced into matrix batches under a size cap and a wait deadline,
//!   trading a bounded amount of latency for amortised matrix-matrix
//!   throughput on the worker pool.
//! * **Placement-aware routing** ([`router`]) — each request carries a
//!   device/network profile; the `mdl-mobile` cost model decides whether
//!   it should run on-device, in the cloud, or split across both, and
//!   overload sheds cloud-bound work to a local early-exit head.
//! * **Serving metrics and load generation** ([`metrics`], [`loadgen`])
//!   — percentile latency histograms, batch-size distribution and
//!   shed/swap counters, plus deterministic open/closed-loop load for
//!   experiments and regression tests.
//! * **SLO-classed sharded fleet** ([`slo`], [`fleet`]) — every request
//!   carries an [`SloClass`]; a deterministic virtual-time fleet engine
//!   runs per-model replica pools with work stealing, class-ordered
//!   windowed admission and continuous plan-cached batching, so 10k+ rps
//!   scheduling behaviour can be proven bit-reproducible in tests.
//!
//! ```
//! use mdl_serve::{ClientProfile, DeviceClass, InferenceServer, NetworkClass, ServeConfig};
//! use mdl_nn::{Activation, Dense, Layer, Sequential};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Dense::new(4, 3, Activation::Identity, &mut rng));
//!
//! let server = InferenceServer::start(model, None, ServeConfig::default());
//! let client = server.client();
//! let profile = ClientProfile { device: DeviceClass::Flagship, network: NetworkClass::Wifi };
//! let response = client.submit(&[0.1, 0.2, 0.3, 0.4], profile).unwrap().recv().unwrap();
//! assert_eq!(response.probs.len(), 3);
//! drop(client);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod fleet;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod router;
pub mod server;
pub mod slo;

pub use fleet::{BatchPolicy, ClassStats, FleetConfig, FleetEngine, FleetReport, RequestOutcome};
pub use loadgen::{
    arrival_schedule, request_stream, run_load, LoadGenConfig, LoadMode, LoadReport, RequestRecord,
};
pub use mdl_net::LinkState;
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use registry::{ModelRegistry, ModelVariant, VersionedModel};
pub use router::{ClientProfile, DeviceClass, NetworkClass, Route, Router};
pub use server::{InferenceResponse, InferenceServer, ServeClient, ServeConfig, SubmitError};
pub use slo::SloClass;
