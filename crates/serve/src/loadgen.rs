//! Deterministic load generation for the serving runtime.
//!
//! Two classic shapes:
//!
//! * **Open loop** — requests arrive on a seeded Poisson process at a
//!   configured offered rate, regardless of how fast the server answers.
//!   This is the honest way to measure latency under load: a slow server
//!   cannot slow the arrival of work.
//! * **Closed loop** — a fixed set of workers each keep exactly one
//!   request outstanding, which measures best-case per-request latency
//!   and natural throughput.
//!
//! Request *content* is fully deterministic (inputs and profiles are
//! drawn by request index from caller-supplied pools); only wall-clock
//! timing varies between runs.

use crate::router::{ClientProfile, Route};
use crate::server::{InferenceResponse, ServeClient};
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Arrival pattern for a load run.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Poisson arrivals at `rps` requests/second, independent of
    /// completion (offered load).
    Open {
        /// Offered arrival rate in requests per second.
        rps: f64,
    },
    /// `concurrency` workers, each with one request in flight at a time.
    Closed {
        /// Number of concurrent request loops.
        concurrency: usize,
    },
}

/// Configuration for one load run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Seed for the arrival process.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Arrival pattern.
    pub mode: LoadMode,
    /// Client profiles, cycled by request index. Must be non-empty.
    pub profiles: Vec<ClientProfile>,
}

/// Client-side measurements from one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Exact client-observed latencies, sorted ascending.
    pub latencies: Vec<Duration>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Requests that received a response.
    pub completed: usize,
    /// Responses per route.
    pub local: usize,
    /// Responses served through the cloud batching path.
    pub cloud: usize,
    /// Responses served through the split path.
    pub split: usize,
    /// Responses answered by the shed fallback.
    pub shed: usize,
    /// Mean worker-pool batch size observed across batched responses.
    pub mean_batch_size: f64,
}

impl LoadReport {
    /// Exact `p`-th percentile latency (`0 < p <= 100`) from the sorted
    /// client-side samples.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.latencies.len() as f64).ceil().max(1.0) as usize;
        self.latencies[rank.min(self.latencies.len()) - 1]
    }

    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of completed requests answered by the shed path.
    pub fn shed_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.shed as f64 / self.completed as f64
        }
    }

    fn from_responses(responses: Vec<InferenceResponse>, elapsed: Duration) -> Self {
        let mut latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
        latencies.sort();
        let (mut local, mut cloud, mut split, mut shed) = (0usize, 0, 0, 0);
        let mut batched = 0usize;
        let mut batch_sum = 0usize;
        for r in &responses {
            match r.route {
                Route::Local => local += 1,
                Route::Cloud => cloud += 1,
                Route::Split { .. } => split += 1,
                Route::EarlyExit => shed += 1,
            }
            if matches!(r.route, Route::Cloud | Route::Split { .. }) {
                batched += 1;
                batch_sum += r.batch_size;
            }
        }
        Self {
            completed: responses.len(),
            latencies,
            elapsed,
            local,
            cloud,
            split,
            shed,
            mean_batch_size: if batched == 0 { 0.0 } else { batch_sum as f64 / batched as f64 },
        }
    }
}

/// Drives `config.requests` requests through `client`, drawing input
/// rows from `inputs` (cycled by request index) and profiles from
/// `config.profiles` (likewise). Returns client-side measurements.
///
/// # Panics
///
/// Panics if `config.profiles` is empty or `inputs` has no rows.
pub fn run_load(client: &ServeClient, inputs: &Matrix, config: &LoadGenConfig) -> LoadReport {
    assert!(!config.profiles.is_empty(), "need at least one client profile");
    assert!(inputs.rows() > 0, "need at least one input row");
    let started = Instant::now();
    let responses = match config.mode {
        LoadMode::Open { rps } => run_open(client, inputs, config, rps),
        LoadMode::Closed { concurrency } => run_closed(client, inputs, config, concurrency),
    };
    LoadReport::from_responses(responses, started.elapsed())
}

fn pick<'a>(
    inputs: &'a Matrix,
    config: &LoadGenConfig,
    index: usize,
) -> (&'a [f32], ClientProfile) {
    (inputs.row(index % inputs.rows()), config.profiles[index % config.profiles.len()])
}

fn run_open(
    client: &ServeClient,
    inputs: &Matrix,
    config: &LoadGenConfig,
    rps: f64,
) -> Vec<InferenceResponse> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mean_gap = 1.0 / rps.max(1e-9);
    let mut receivers = Vec::with_capacity(config.requests);
    // Absolute-deadline pacing: each arrival is scheduled on the Poisson
    // timeline computed up front, so oversleeping one gap (timer
    // granularity) is recovered on the next instead of compounding into
    // a lower offered rate.
    let started = Instant::now();
    let mut due = 0.0f64;
    for i in 0..config.requests {
        // exponential interarrival: -mean * ln(1 - U)
        let u: f64 = rng.gen();
        due += -mean_gap * (1.0 - u).ln().min(0.0);
        let target = started + Duration::from_secs_f64(due.min(3600.0));
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let (input, profile) = pick(inputs, config, i);
        match client.submit(input, profile) {
            Ok(rx) => receivers.push(rx),
            Err(_) => break,
        }
    }
    receivers.into_iter().filter_map(|rx| rx.recv().ok()).collect()
}

fn run_closed(
    client: &ServeClient,
    inputs: &Matrix,
    config: &LoadGenConfig,
    concurrency: usize,
) -> Vec<InferenceResponse> {
    let concurrency = concurrency.max(1);
    let total = config.requests;
    let mut responses = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|w| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    // worker w owns request indices w, w+C, w+2C, ...
                    let mut i = w;
                    while i < total {
                        let (input, profile) = pick(inputs, config, i);
                        let Ok(rx) = client.submit(input, profile) else { break };
                        if let Ok(resp) = rx.recv() {
                            mine.push(resp);
                        }
                        i += concurrency;
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            responses.extend(h.join().expect("load worker"));
        }
    });
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{DeviceClass, NetworkClass};
    use crate::server::{InferenceServer, ServeConfig};
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Big enough (~9.6M MACs) that a wearable on Wi-Fi goes cloud-bound.
    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3, Activation::Identity, &mut rng));
        net
    }

    fn inputs() -> Matrix {
        Matrix::from_fn(32, 32, |r, c| ((r * 32 + c) as f32 * 0.7).sin())
    }

    #[test]
    fn closed_loop_answers_every_request() {
        let server = InferenceServer::start(model(), None, ServeConfig::default());
        let client = server.client();
        let report = run_load(
            &client,
            &inputs(),
            &LoadGenConfig {
                seed: 1,
                requests: 64,
                mode: LoadMode::Closed { concurrency: 4 },
                profiles: vec![ClientProfile {
                    device: DeviceClass::Wearable,
                    network: NetworkClass::Wifi,
                }],
            },
        );
        assert_eq!(report.completed, 64);
        assert_eq!(report.latencies.len(), 64);
        assert!(report.percentile(50.0) <= report.percentile(99.0));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn open_loop_is_deterministic_in_content() {
        let server = InferenceServer::start(model(), None, ServeConfig::default());
        let client = server.client();
        let report = run_load(
            &client,
            &inputs(),
            &LoadGenConfig {
                seed: 7,
                requests: 40,
                mode: LoadMode::Open { rps: 5_000.0 },
                profiles: vec![
                    ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi },
                    ClientProfile { device: DeviceClass::Flagship, network: NetworkClass::Offline },
                ],
            },
        );
        assert_eq!(report.completed, 40);
        // profiles are cycled: half offline/local, half cloud-bound
        assert_eq!(report.local, 20);
        assert_eq!(report.cloud + report.split, 20);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn percentile_is_exact_on_known_samples() {
        let report = LoadReport {
            latencies: (1..=100).map(Duration::from_micros).collect(),
            elapsed: Duration::from_secs(1),
            completed: 100,
            local: 0,
            cloud: 100,
            split: 0,
            shed: 0,
            mean_batch_size: 1.0,
        };
        assert_eq!(report.percentile(50.0), Duration::from_micros(50));
        assert_eq!(report.percentile(99.0), Duration::from_micros(99));
        assert_eq!(report.percentile(100.0), Duration::from_micros(100));
        assert!((report.throughput_rps() - 100.0).abs() < 1e-9);
    }
}
