//! Deterministic load generation for the serving runtime.
//!
//! Two classic shapes:
//!
//! * **Open loop** — requests arrive on a seeded Poisson process at a
//!   configured offered rate, regardless of how fast the server answers.
//!   This is the honest way to measure latency under load: a slow server
//!   cannot slow the arrival of work.
//! * **Closed loop** — a fixed set of workers each keep exactly one
//!   request outstanding, which measures best-case per-request latency
//!   and natural throughput.
//!
//! Request *content* is fully deterministic (inputs, profiles and SLO
//! classes are drawn by request index from caller-supplied pools), and
//! the open-loop **arrival schedule** is a pure function of
//! `(seed, rps, request count)` — see [`arrival_schedule`] — so the same
//! offered workload can be replayed against the wall-clock server or fed
//! verbatim to the virtual-time [`crate::fleet`] engine. Only wall-clock
//! timing varies between runs.

use crate::router::{ClientProfile, Route};
use crate::server::{InferenceResponse, ServeClient};
use crate::slo::SloClass;
use mdl_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Arrival pattern for a load run.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Poisson arrivals at `rps` requests/second, independent of
    /// completion (offered load).
    Open {
        /// Offered arrival rate in requests per second.
        rps: f64,
    },
    /// `concurrency` workers, each with one request in flight at a time.
    Closed {
        /// Number of concurrent request loops.
        concurrency: usize,
    },
}

/// Configuration for one load run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Seed for the arrival process.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Arrival pattern.
    pub mode: LoadMode,
    /// Client profiles, cycled by request index. Must be non-empty.
    pub profiles: Vec<ClientProfile>,
    /// SLO classes, cycled by request index. Empty means every request
    /// goes through the unclassed [`ServeClient::submit`] path and is
    /// treated as [`SloClass::Standard`] by the server.
    pub classes: Vec<SloClass>,
}

/// The open-loop Poisson arrival schedule as virtual-nanosecond offsets
/// from the start of the run, one entry per request, non-decreasing.
///
/// This is a **pure function** of `(seed, rps, requests)` — it never
/// observes the consumer, the wall clock, or thread timing — so the same
/// offered workload can be replayed against the wall-clock server (which
/// sleeps until each offset) or handed to the virtual-time fleet engine
/// (which treats offsets as simulated arrival times) and both see
/// identical arrivals.
pub fn arrival_schedule(seed: u64, rps: f64, requests: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap = 1.0 / rps.max(1e-9);
    let mut due = 0.0f64;
    let mut offsets = Vec::with_capacity(requests);
    for _ in 0..requests {
        // exponential interarrival: -mean * ln(1 - U)
        let u: f64 = rng.gen();
        due += -mean_gap * (1.0 - u).ln().min(0.0);
        offsets.push((due.min(3600.0) * 1e9) as u64);
    }
    offsets
}

/// One offered request in replayable form: everything the serving tier
/// needs to reproduce the arrival, independent of who consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request index in the offered stream (also the FIFO tie-breaker).
    pub index: u32,
    /// Arrival offset in virtual nanoseconds from the start of the run.
    pub arrival_ns: u64,
    /// SLO class the request was tagged with.
    pub class: SloClass,
    /// Input row index into the caller's input matrix.
    pub row: u32,
}

impl RequestRecord {
    /// Wire size of one encoded record.
    pub const WIRE_BYTES: usize = 17;

    /// Fixed-width little-endian encoding:
    /// `index u32 | arrival_ns u64 | class rank u8 | row u32`.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[0..4].copy_from_slice(&self.index.to_le_bytes());
        out[4..12].copy_from_slice(&self.arrival_ns.to_le_bytes());
        out[12] = self.class.rank() as u8;
        out[13..17].copy_from_slice(&self.row.to_le_bytes());
        out
    }

    /// Inverse of [`RequestRecord::to_bytes`]; `None` on short input or
    /// an out-of-range class rank.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < Self::WIRE_BYTES {
            return None;
        }
        Some(Self {
            index: u32::from_le_bytes(bytes[0..4].try_into().ok()?),
            arrival_ns: u64::from_le_bytes(bytes[4..12].try_into().ok()?),
            class: SloClass::from_rank(bytes[12] as usize)?,
            row: u32::from_le_bytes(bytes[13..17].try_into().ok()?),
        })
    }
}

/// The full offered request stream for an open-loop run: the
/// [`arrival_schedule`] zipped with cycled classes and input rows.
/// Empty `classes` tags everything [`SloClass::Standard`]. Pure in the
/// same sense as [`arrival_schedule`].
pub fn request_stream(
    seed: u64,
    rps: f64,
    requests: usize,
    classes: &[SloClass],
    input_rows: usize,
) -> Vec<RequestRecord> {
    let input_rows = input_rows.max(1);
    arrival_schedule(seed, rps, requests)
        .into_iter()
        .enumerate()
        .map(|(i, arrival_ns)| RequestRecord {
            index: i as u32,
            arrival_ns,
            class: if classes.is_empty() { SloClass::Standard } else { classes[i % classes.len()] },
            row: (i % input_rows) as u32,
        })
        .collect()
}

/// Client-side measurements from one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Exact client-observed latencies of **served** responses (every
    /// route except the shed fallback), sorted ascending. Shed responses
    /// return in microseconds and would drag every percentile toward
    /// zero if mixed in, so they live in `shed_latencies`.
    pub latencies: Vec<Duration>,
    /// Client-observed latencies of shed responses, sorted ascending.
    pub shed_latencies: Vec<Duration>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Requests that received a response (served or shed).
    pub completed: usize,
    /// Responses per route.
    pub local: usize,
    /// Responses served through the cloud batching path.
    pub cloud: usize,
    /// Responses served through the split path.
    pub split: usize,
    /// Responses answered by the shed fallback.
    pub shed: usize,
    /// Served responses per SLO class, indexed by [`SloClass::rank`].
    /// Unclassed responses count toward [`SloClass::Standard`].
    pub class_served: [usize; SloClass::COUNT],
    /// Shed responses per SLO class, indexed by [`SloClass::rank`].
    pub class_shed: [usize; SloClass::COUNT],
    /// Mean worker-pool batch size observed across batched responses.
    pub mean_batch_size: f64,
}

impl LoadReport {
    /// Exact `p`-th percentile latency (`0 < p <= 100`) from the sorted
    /// **served** samples; shed responses never contribute.
    pub fn percentile(&self, p: f64) -> Duration {
        Self::exact_percentile(&self.latencies, p)
    }

    /// Exact `p`-th percentile latency of the shed fallback path.
    pub fn shed_percentile(&self, p: f64) -> Duration {
        Self::exact_percentile(&self.shed_latencies, p)
    }

    fn exact_percentile(sorted: &[Duration], p: f64) -> Duration {
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of completed requests answered by the shed path.
    pub fn shed_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.shed as f64 / self.completed as f64
        }
    }

    fn from_responses(responses: Vec<InferenceResponse>, elapsed: Duration) -> Self {
        let mut latencies = Vec::with_capacity(responses.len());
        let mut shed_latencies = Vec::new();
        let (mut local, mut cloud, mut split, mut shed) = (0usize, 0, 0, 0);
        let mut class_served = [0usize; SloClass::COUNT];
        let mut class_shed = [0usize; SloClass::COUNT];
        let mut batched = 0usize;
        let mut batch_sum = 0usize;
        for r in &responses {
            let rank = r.class.unwrap_or(SloClass::Standard).rank();
            match r.route {
                Route::Local => local += 1,
                Route::Cloud => cloud += 1,
                Route::Split { .. } => split += 1,
                Route::EarlyExit => shed += 1,
            }
            if matches!(r.route, Route::EarlyExit) {
                shed_latencies.push(r.latency);
                class_shed[rank] += 1;
            } else {
                latencies.push(r.latency);
                class_served[rank] += 1;
            }
            if matches!(r.route, Route::Cloud | Route::Split { .. }) {
                batched += 1;
                batch_sum += r.batch_size;
            }
        }
        latencies.sort();
        shed_latencies.sort();
        Self {
            completed: responses.len(),
            latencies,
            shed_latencies,
            elapsed,
            local,
            cloud,
            split,
            shed,
            class_served,
            class_shed,
            mean_batch_size: if batched == 0 { 0.0 } else { batch_sum as f64 / batched as f64 },
        }
    }
}

/// Drives `config.requests` requests through `client`, drawing input
/// rows from `inputs` (cycled by request index) and profiles from
/// `config.profiles` (likewise). Returns client-side measurements.
///
/// # Panics
///
/// Panics if `config.profiles` is empty or `inputs` has no rows.
pub fn run_load(client: &ServeClient, inputs: &Matrix, config: &LoadGenConfig) -> LoadReport {
    assert!(!config.profiles.is_empty(), "need at least one client profile");
    assert!(inputs.rows() > 0, "need at least one input row");
    let started = Instant::now();
    let responses = match config.mode {
        LoadMode::Open { rps } => run_open(client, inputs, config, rps),
        LoadMode::Closed { concurrency } => run_closed(client, inputs, config, concurrency),
    };
    LoadReport::from_responses(responses, started.elapsed())
}

fn pick<'a>(
    inputs: &'a Matrix,
    config: &LoadGenConfig,
    index: usize,
) -> (&'a [f32], ClientProfile) {
    (inputs.row(index % inputs.rows()), config.profiles[index % config.profiles.len()])
}

fn submit_indexed(
    client: &ServeClient,
    inputs: &Matrix,
    config: &LoadGenConfig,
    index: usize,
) -> Result<crossbeam::channel::Receiver<InferenceResponse>, crate::server::SubmitError> {
    let (input, profile) = pick(inputs, config, index);
    if config.classes.is_empty() {
        client.submit(input, profile)
    } else {
        client.submit_classed(input, profile, config.classes[index % config.classes.len()])
    }
}

fn run_open(
    client: &ServeClient,
    inputs: &Matrix,
    config: &LoadGenConfig,
    rps: f64,
) -> Vec<InferenceResponse> {
    let mut receivers = Vec::with_capacity(config.requests);
    // Absolute-deadline pacing: each arrival is scheduled on the Poisson
    // timeline computed up front, so oversleeping one gap (timer
    // granularity) is recovered on the next instead of compounding into
    // a lower offered rate.
    let schedule = arrival_schedule(config.seed, rps, config.requests);
    let started = Instant::now();
    for (i, &offset_ns) in schedule.iter().enumerate() {
        let target = started + Duration::from_nanos(offset_ns);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        match submit_indexed(client, inputs, config, i) {
            Ok(rx) => receivers.push(rx),
            Err(_) => break,
        }
    }
    receivers.into_iter().filter_map(|rx| rx.recv().ok()).collect()
}

fn run_closed(
    client: &ServeClient,
    inputs: &Matrix,
    config: &LoadGenConfig,
    concurrency: usize,
) -> Vec<InferenceResponse> {
    let concurrency = concurrency.max(1);
    let total = config.requests;
    let mut responses = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|w| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    // worker w owns request indices w, w+C, w+2C, ...
                    let mut i = w;
                    while i < total {
                        let Ok(rx) = submit_indexed(&client, inputs, config, i) else { break };
                        if let Ok(resp) = rx.recv() {
                            mine.push(resp);
                        }
                        i += concurrency;
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            responses.extend(h.join().expect("load worker"));
        }
    });
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{DeviceClass, NetworkClass};
    use crate::server::{InferenceServer, ServeConfig};
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Big enough (~9.6M MACs) that a wearable on Wi-Fi goes cloud-bound.
    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3, Activation::Identity, &mut rng));
        net
    }

    fn inputs() -> Matrix {
        Matrix::from_fn(32, 32, |r, c| ((r * 32 + c) as f32 * 0.7).sin())
    }

    #[test]
    fn closed_loop_answers_every_request() {
        let server = InferenceServer::start(model(), None, ServeConfig::default());
        let client = server.client();
        let report = run_load(
            &client,
            &inputs(),
            &LoadGenConfig {
                seed: 1,
                requests: 64,
                mode: LoadMode::Closed { concurrency: 4 },
                profiles: vec![ClientProfile {
                    device: DeviceClass::Wearable,
                    network: NetworkClass::Wifi,
                }],
                classes: vec![SloClass::Interactive, SloClass::BestEffort],
            },
        );
        assert_eq!(report.completed, 64);
        assert_eq!(report.latencies.len(), 64);
        assert!(report.shed_latencies.is_empty());
        // classes cycle by index: half interactive, half best-effort
        assert_eq!(report.class_served[SloClass::Interactive.rank()], 32);
        assert_eq!(report.class_served[SloClass::BestEffort.rank()], 32);
        assert_eq!(report.class_shed, [0; SloClass::COUNT]);
        assert!(report.percentile(50.0) <= report.percentile(99.0));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn open_loop_is_deterministic_in_content() {
        let server = InferenceServer::start(model(), None, ServeConfig::default());
        let client = server.client();
        let report = run_load(
            &client,
            &inputs(),
            &LoadGenConfig {
                seed: 7,
                requests: 40,
                mode: LoadMode::Open { rps: 5_000.0 },
                profiles: vec![
                    ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi },
                    ClientProfile { device: DeviceClass::Flagship, network: NetworkClass::Offline },
                ],
                classes: vec![],
            },
        );
        assert_eq!(report.completed, 40);
        // profiles are cycled: half offline/local, half cloud-bound
        assert_eq!(report.local, 20);
        assert_eq!(report.cloud + report.split, 20);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn percentile_is_exact_on_known_samples() {
        let report = LoadReport {
            latencies: (1..=100).map(Duration::from_micros).collect(),
            shed_latencies: (1..=10).map(Duration::from_micros).collect(),
            elapsed: Duration::from_secs(1),
            completed: 110,
            local: 0,
            cloud: 100,
            split: 0,
            shed: 10,
            class_served: [0, 100, 0],
            class_shed: [0, 0, 10],
            mean_batch_size: 1.0,
        };
        assert_eq!(report.percentile(50.0), Duration::from_micros(50));
        assert_eq!(report.percentile(99.0), Duration::from_micros(99));
        assert_eq!(report.percentile(100.0), Duration::from_micros(100));
        assert_eq!(report.shed_percentile(100.0), Duration::from_micros(10));
        assert!((report.throughput_rps() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_schedule_is_pure_and_monotonic() {
        let a = arrival_schedule(42, 1000.0, 256);
        let b = arrival_schedule(42, 1000.0, 256);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // a different seed moves the arrivals
        assert_ne!(a, arrival_schedule(43, 1000.0, 256));
        // a longer run extends the same prefix — consuming more of the
        // stream never rewrites what already arrived
        let longer = arrival_schedule(42, 1000.0, 512);
        assert_eq!(&longer[..256], &a[..]);
    }

    #[test]
    fn request_record_round_trips_on_the_wire() {
        let rec = RequestRecord {
            index: 7,
            arrival_ns: 123_456_789,
            class: SloClass::BestEffort,
            row: 31,
        };
        assert_eq!(RequestRecord::from_bytes(&rec.to_bytes()), Some(rec));
        // short buffers and junk class ranks are rejected, not misparsed
        assert_eq!(RequestRecord::from_bytes(&rec.to_bytes()[..16]), None);
        let mut bad = rec.to_bytes();
        bad[12] = 9;
        assert_eq!(RequestRecord::from_bytes(&bad), None);
    }
}
