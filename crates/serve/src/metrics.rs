//! Serving metrics, backed by the [`mdl_obs`] registry.
//!
//! [`ServerMetrics`] is a thin facade over cached `serve.*` instruments in
//! an [`mdl_obs::MetricsRegistry`]: every event recorded here lands in the
//! registry (and therefore in [`mdl_obs::ObsSnapshot`] exports) — there is
//! no second bookkeeping path. The instrument names are:
//!
//! | name                     | kind                     | meaning                         |
//! |--------------------------|--------------------------|---------------------------------|
//! | `serve.latency_us`       | histogram (pow2)         | *served-only* submit→response µs|
//! | `serve.shed_latency_us`  | histogram (pow2, lazy)   | latency of shed answers, µs     |
//! | `serve.batch_size`       | histogram (linear, w=1)  | dispatched batch sizes          |
//! | `serve.completed`        | counter                  | responses served                |
//! | `serve.shed`             | counter                  | answered by the early-exit path |
//! | `serve.local`            | counter                  | answered on-device              |
//! | `serve.batches`          | counter                  | batches dispatched              |
//! | `serve.batched_requests` | counter                  | requests inside those batches   |
//! | `serve.queue_depth`      | gauge                    | instantaneous admission depth   |
//! | `serve.swaps`            | counter (lazy)           | completed hot swaps             |
//! | `serve.reverts`          | counter (lazy)           | rollbacks to a pinned version   |
//! | `serve.class.<c>.completed`  | counter (lazy)       | served responses in class `<c>` |
//! | `serve.class.<c>.shed`       | counter (lazy)       | shed requests in class `<c>`    |
//! | `serve.class.<c>.latency_us` | histogram (pow2, lazy)| served-only latency per class  |
//! | `plan.cache_hits`        | counter (lazy)           | batches served on a cached plan |
//! | `plan.cache_misses`      | counter (lazy)           | plan compilations (incl. rejects)|
//! | `plan.fused_ops`         | counter (lazy)           | fused kernels across compiles   |
//! | `plan.arena_bytes`       | gauge (lazy)             | last compiled plan's arena size |
//!
//! Shed answers and served responses land in **separate** histograms:
//! an early-exit answer returns in microseconds, so mixing the two made
//! a shed-heavy run report a nonsense sub-inference p50 (the old
//! `p50_us: 5` at 3200 offered rps). `serve.latency_us` now carries only
//! responses the model actually served; shed latency is tracked, but
//! apart, under `serve.shed_latency_us`.
//!
//! The swap/revert, shed-latency, per-class (`serve.class.<c>.*`, where
//! `<c>` is an [`SloClass::label`]) and `plan.*` instruments are
//! registered on first use rather than at construction, so a server that
//! never swaps, never sheds, and serves only unclassed traffic exports
//! exactly the same instrument set as before those features existed (the
//! golden observability trace depends on this).
//!
//! Timestamps come from the observability clock, so a server attached to a
//! simulated clock ([`mdl_obs::Clock`] in sim mode) reports deterministic
//! latencies (zero unless the simulation advances time), while the default
//! wall clock measures real elapsed time.

use crate::slo::SloClass;
use mdl_obs::{Buckets, Clock, Counter, Gauge, Histogram, Obs};
use std::time::Duration;

/// Largest tracked batch size; bigger batches land in the last bucket.
const BATCH_BUCKETS: usize = 64;

/// Shared handles updated by the scheduler, workers and client handles.
///
/// Cloning is cheap; clones observe and record into the same registry
/// instruments.
#[derive(Clone)]
pub struct ServerMetrics {
    obs: Obs,
    clock: Clock,
    latency_us: Histogram,
    batch_size: Histogram,
    batches: Counter,
    batched_requests: Counter,
    completed: Counter,
    shed: Counter,
    local: Counter,
    queue_depth: Gauge,
}

impl ServerMetrics {
    /// Binds the `serve.*` instruments in `obs`'s registry.
    pub fn new(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            obs: obs.clone(),
            clock: obs.clock().clone(),
            latency_us: r.histogram("serve.latency_us", Buckets::Pow2),
            // Width-1 linear buckets make bucket index == batch size, so
            // the snapshot's `(size, count)` pairs read off directly.
            batch_size: r.histogram(
                "serve.batch_size",
                Buckets::Linear { width: 1, count: BATCH_BUCKETS + 1 },
            ),
            batches: r.counter("serve.batches"),
            batched_requests: r.counter("serve.batched_requests"),
            completed: r.counter("serve.completed"),
            shed: r.counter("serve.shed"),
            local: r.counter("serve.local"),
            queue_depth: r.gauge("serve.queue_depth"),
        }
    }

    /// Current observability-clock time in nanoseconds (wall or simulated).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Records a dispatched batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batch_size.record(size as u64);
        self.batches.inc();
        self.batched_requests.add(size as u64);
    }

    /// Records one *served* response (cloud, split or local — anything
    /// the model itself answered). Shed answers go through
    /// [`ServerMetrics::record_shed`] instead, so `serve.latency_us`
    /// never mixes microsecond early-exit replies into the served
    /// latency distribution.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.inc();
        self.latency_us.record(latency.as_micros() as u64);
    }

    /// Records a request answered by the shed path. Its latency lands in
    /// the lazy `serve.shed_latency_us` histogram — never in
    /// `serve.latency_us` — so shed-free runs export an unchanged
    /// instrument set and shed-heavy runs keep an honest served p50.
    pub fn record_shed(&self, latency: Duration) {
        self.shed.inc();
        self.obs
            .registry()
            .histogram("serve.shed_latency_us", Buckets::Pow2)
            .record(latency.as_micros() as u64);
    }

    /// Records one served response under its SLO class (lazy
    /// `serve.class.<c>.completed` counter + `serve.class.<c>.latency_us`
    /// histogram). Call alongside [`ServerMetrics::record_completed`].
    pub fn record_class_completed(&self, class: SloClass, latency: Duration) {
        let r = self.obs.registry();
        r.counter(class.completed_metric()).inc();
        r.histogram(class.latency_metric(), Buckets::Pow2).record(latency.as_micros() as u64);
    }

    /// Records one shed request under its SLO class (lazy
    /// `serve.class.<c>.shed` counter). Call alongside
    /// [`ServerMetrics::record_shed`].
    pub fn record_class_shed(&self, class: SloClass) {
        self.obs.registry().counter(class.shed_metric()).inc();
    }

    /// Records a request answered on-device (routed local, never queued).
    pub fn record_local(&self) {
        self.local.inc();
    }

    /// Publishes the instantaneous request-queue depth.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as f64);
    }

    /// Records one completed hot swap. The `serve.swaps` counter is
    /// created lazily so swap-free runs export an unchanged instrument
    /// set.
    pub fn record_swap(&self) {
        self.obs.registry().counter("serve.swaps").inc();
    }

    /// Records one rollback to a pinned version (lazy `serve.reverts`).
    pub fn record_revert(&self) {
        self.obs.registry().counter("serve.reverts").inc();
    }

    /// Records a batch served on a cached execution plan (lazy
    /// `plan.cache_hits` — like the swap counters, absent until the
    /// planned path first fires).
    pub fn record_plan_hit(&self) {
        self.obs.registry().counter("plan.cache_hits").inc();
    }

    /// Records a plan-cache miss. `stats` carries the freshly compiled
    /// plan's facts (`None` when the model can't be planned and the worker
    /// cached the rejection): fused-op counts accumulate into
    /// `plan.fused_ops` and the `plan.arena_bytes` gauge tracks the most
    /// recently compiled plan's arena footprint.
    pub fn record_plan_miss(&self, stats: Option<mdl_nn::PlanStats>) {
        let r = self.obs.registry();
        r.counter("plan.cache_misses").inc();
        if let Some(s) = stats {
            r.counter("plan.fused_ops").add(s.fused_ops as u64);
            r.gauge("plan.arena_bytes").set(s.arena_bytes as f64);
        }
    }

    /// Point-in-time summary. `elapsed` is the measurement window used for
    /// throughput.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let completed = self.completed.get();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let lat = self.latency_us.snapshot("serve.latency_us");
        let batch_histogram: Vec<(usize, u64)> = self
            .batch_size
            .snapshot("serve.batch_size")
            .buckets
            .into_iter()
            .filter(|&(size, _)| size > 0)
            .collect();
        let us = |q: u64| Duration::from_micros(q);
        MetricsSnapshot {
            completed,
            shed: self.shed.get(),
            local: self.local.get(),
            batches,
            mean_batch_size: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            batch_histogram,
            queue_depth: self.queue_depth.get() as usize,
            throughput_rps: if elapsed.is_zero() {
                0.0
            } else {
                completed as f64 / elapsed.as_secs_f64()
            },
            mean_latency: lat
                .sum
                .checked_div(lat.count)
                .map_or(Duration::ZERO, Duration::from_micros),
            p50: us(lat.p50),
            p95: us(lat.p95),
            p99: us(lat.p99),
        }
    }
}

/// A frozen view of [`ServerMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Responses the model served (local + batched). Shed answers are
    /// counted under [`MetricsSnapshot::shed`], not here.
    pub completed: u64,
    /// Requests answered by the shed (early-exit) path.
    pub shed: u64,
    /// Requests answered on-device without queueing.
    pub local: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// `(batch size, count)` pairs, ascending, zero counts omitted.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Request-queue depth at snapshot time.
    pub queue_depth: usize,
    /// Served responses per second over the window.
    pub throughput_rps: f64,
    /// Mean served submit→response latency (shed answers excluded).
    pub mean_latency: Duration,
    /// Median served latency (histogram bucket upper bound).
    pub p50: Duration,
    /// 95th percentile served latency (histogram bucket upper bound).
    pub p95: Duration,
    /// 99th percentile served latency (histogram bucket upper bound).
    pub p99: Duration,
}

impl MetricsSnapshot {
    /// Fraction of all answered requests (served + shed) that took the
    /// shed path.
    pub fn shed_rate(&self) -> f64 {
        let answered = self.completed + self.shed;
        if answered == 0 {
            0.0
        } else {
            self.shed as f64 / answered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = ServerMetrics::new(&Obs::wall());
        for _ in 0..99 {
            m.record_completed(Duration::from_micros(100)); // bucket [64, 128)
        }
        m.record_completed(Duration::from_millis(50)); // far tail
        let snap = m.snapshot(Duration::from_secs(1));
        assert!(
            snap.p50 >= Duration::from_micros(100) && snap.p50 <= Duration::from_micros(256),
            "{:?}",
            snap.p50
        );
        assert!(snap.p95 <= Duration::from_micros(256));
        assert!(snap.p99 <= Duration::from_micros(256));
        assert_eq!(snap.completed, 100);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let m = ServerMetrics::new(&Obs::wall());
        m.record_batch(1);
        m.record_batch(7);
        m.record_completed(Duration::from_micros(10));
        let snap = m.snapshot(Duration::from_secs(2));
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 4.0).abs() < 1e-9);
        assert_eq!(snap.batch_histogram, vec![(1, 1), (7, 1)]);
        assert!((snap.throughput_rps - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_snapshot_is_zero() {
        let m = ServerMetrics::new(&Obs::wall());
        let snap = m.snapshot(Duration::ZERO);
        assert_eq!(snap.p99, Duration::ZERO);
        assert_eq!(snap.mean_latency, Duration::ZERO);
        assert_eq!(snap.throughput_rps, 0.0);
    }

    #[test]
    fn events_land_in_the_shared_registry() {
        let obs = Obs::sim();
        let m = ServerMetrics::new(&obs);
        m.record_local();
        m.record_shed(Duration::from_micros(5));
        m.record_batch(3);
        m.record_completed(Duration::from_micros(5));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("serve.local"), Some(1));
        assert_eq!(snap.counter("serve.shed"), Some(1));
        assert_eq!(snap.counter("serve.batches"), Some(1));
        assert_eq!(snap.counter("serve.batched_requests"), Some(3));
        assert_eq!(snap.counter("serve.completed"), Some(1));
        let lat = snap.histogram("serve.latency_us").expect("latency histogram exported");
        assert_eq!(lat.count, 1);
        let shed = snap.histogram("serve.shed_latency_us").expect("shed latency exported");
        assert_eq!(shed.count, 1);
    }

    #[test]
    fn shed_latency_never_lands_in_the_served_histogram() {
        let obs = Obs::sim();
        let m = ServerMetrics::new(&obs);
        m.record_completed(Duration::from_millis(8));
        for _ in 0..50 {
            m.record_shed(Duration::from_micros(5));
        }
        let snap = obs.snapshot();
        let lat = snap.histogram("serve.latency_us").expect("served histogram");
        assert_eq!(lat.count, 1, "50 sheds must not pollute the served histogram");
        assert!(lat.min >= 8_000, "served min stays at the real forward, got {}", lat.min);
        let shed = snap.histogram("serve.shed_latency_us").expect("shed histogram");
        assert_eq!(shed.count, 50);
        let metrics = m.snapshot(Duration::from_secs(1));
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.shed, 50);
        assert!((metrics.shed_rate() - 50.0 / 51.0).abs() < 1e-9);
    }

    #[test]
    fn shed_and_class_instruments_register_lazily() {
        let obs = Obs::sim();
        let m = ServerMetrics::new(&obs);
        m.record_completed(Duration::from_micros(10));
        let before = obs.snapshot();
        assert!(before.histogram("serve.shed_latency_us").is_none(), "absent until a shed");
        for class in SloClass::ALL {
            assert_eq!(before.counter(class.completed_metric()), None);
            assert_eq!(before.counter(class.shed_metric()), None);
            assert!(before.histogram(class.latency_metric()).is_none());
        }
        m.record_class_completed(SloClass::Interactive, Duration::from_micros(100));
        m.record_class_shed(SloClass::BestEffort);
        let after = obs.snapshot();
        assert_eq!(after.counter("serve.class.interactive.completed"), Some(1));
        assert_eq!(after.counter("serve.class.best_effort.shed"), Some(1));
        assert_eq!(after.histogram("serve.class.interactive.latency_us").unwrap().count, 1);
        assert_eq!(after.counter("serve.class.standard.completed"), None, "still lazy");
    }

    #[test]
    fn swap_counters_register_lazily() {
        let obs = Obs::sim();
        let m = ServerMetrics::new(&obs);
        m.record_completed(Duration::from_micros(1));
        let before = obs.snapshot();
        assert_eq!(before.counter("serve.swaps"), None, "absent until a swap happens");
        assert_eq!(before.counter("serve.reverts"), None);
        m.record_swap();
        m.record_swap();
        m.record_revert();
        let after = obs.snapshot();
        assert_eq!(after.counter("serve.swaps"), Some(2));
        assert_eq!(after.counter("serve.reverts"), Some(1));
    }

    #[test]
    fn sim_clock_reports_zero_latency_deterministically() {
        let obs = Obs::sim();
        let m = ServerMetrics::new(&obs);
        let t0 = m.now_ns();
        let t1 = m.now_ns();
        assert_eq!(t0, t1, "sim clock only moves when advanced");
        obs.clock().advance_ns(1_500);
        assert_eq!(m.now_ns(), t0 + 1_500);
    }
}
