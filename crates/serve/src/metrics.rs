//! Lock-free serving metrics: latency histogram with percentile readout,
//! batch-size distribution, throughput, queue depth and event counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets (1 µs up to ~9 minutes).
const LATENCY_BUCKETS: usize = 40;

/// Largest tracked batch size; bigger batches land in the last bucket.
const BATCH_BUCKETS: usize = 64;

/// Geometric (power-of-two) histogram over microseconds.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` µs; percentiles are read
/// back as the upper bound of the bucket the rank falls in, which bounds
/// the true percentile within a factor of two — plenty for serving
/// dashboards and regression assertions.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(us: u64) -> usize {
        (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros() as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency over all samples.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us.load(Ordering::Relaxed) / n)
    }

    /// Upper-bound estimate of the `p`-th percentile (`0 < p <= 100`).
    pub fn percentile(&self, p: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_micros(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_micros(u64::MAX >> 1)
    }
}

/// Shared counters updated by the scheduler, workers and client handles.
pub struct ServerMetrics {
    /// End-to-end submit→response latency.
    pub latency: LatencyHistogram,
    batch_sizes: [AtomicU64; BATCH_BUCKETS],
    batches: AtomicU64,
    batched_requests: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    local: AtomicU64,
    queue_depth: AtomicUsize,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            latency: LatencyHistogram::default(),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            local: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
        }
    }
}

impl ServerMetrics {
    /// Records a dispatched batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batch_sizes[size.min(BATCH_BUCKETS) - 1].fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Records one delivered response.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a request answered by the shed path.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered on-device (routed local, never queued).
    pub fn record_local(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the instantaneous request-queue depth.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Point-in-time summary. `elapsed` is the measurement window used for
    /// throughput.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let batch_histogram: Vec<(usize, u64)> = self
            .batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i + 1, n))
            })
            .collect();
        MetricsSnapshot {
            completed,
            shed: self.shed.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            batch_histogram,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            throughput_rps: if elapsed.is_zero() {
                0.0
            } else {
                completed as f64 / elapsed.as_secs_f64()
            },
            mean_latency: self.latency.mean(),
            p50: self.latency.percentile(50.0),
            p95: self.latency.percentile(95.0),
            p99: self.latency.percentile(99.0),
        }
    }
}

/// A frozen view of [`ServerMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Responses delivered (all routes, including shed answers).
    pub completed: u64,
    /// Requests answered by the shed (early-exit) path.
    pub shed: u64,
    /// Requests answered on-device without queueing.
    pub local: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// `(batch size, count)` pairs, ascending, zero counts omitted.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Request-queue depth at snapshot time.
    pub queue_depth: usize,
    /// Completed responses per second over the window.
    pub throughput_rps: f64,
    /// Mean submit→response latency.
    pub mean_latency: Duration,
    /// Median latency (histogram upper bound).
    pub p50: Duration,
    /// 95th percentile latency (histogram upper bound).
    pub p95: Duration,
    /// 99th percentile latency (histogram upper bound).
    pub p99: Duration,
}

impl MetricsSnapshot {
    /// Fraction of completed responses answered by the shed path.
    pub fn shed_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.shed as f64 / self.completed as f64
        }
    }
}

/// Convenience stopwatch for throughput windows.
pub struct Stopwatch(Instant);

impl Default for Stopwatch {
    fn default() -> Self {
        Self(Instant::now())
    }
}

impl Stopwatch {
    /// Time since construction.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // far tail
        let p50 = h.percentile(50.0);
        assert!(p50 >= Duration::from_micros(100) && p50 <= Duration::from_micros(256), "{p50:?}");
        assert!(h.percentile(99.0) <= Duration::from_micros(256));
        assert!(h.percentile(100.0) >= Duration::from_millis(50));
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let m = ServerMetrics::default();
        m.record_batch(1);
        m.record_batch(7);
        m.record_completed(Duration::from_micros(10));
        let snap = m.snapshot(Duration::from_secs(2));
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 4.0).abs() < 1e-9);
        assert_eq!(snap.batch_histogram, vec![(1, 1), (7, 1)]);
        assert!((snap.throughput_rps - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(99.0), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
