//! Versioned model registry with atomic hot swap.
//!
//! Serving keeps exactly one *current* model behind an `Arc`; workers grab
//! a snapshot per batch, so a swap never interrupts an in-flight batch —
//! it finishes on the version it started with while new batches pick up
//! the replacement. This is the paper's §III "update the model without
//! shipping a new app" concern, applied to the serving tier.

use mdl_compress::CompressedModel;
use mdl_nn::saved::{load_model, LoadModelError};
use mdl_nn::{Layer, LayerInfo, QuantizedModel, Sequential};
use mdl_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The executable form a registry version holds: the f32 eval path or
/// the int8 quantized path. Both are read-only at inference time, so a
/// registry can hot-swap freely between precisions of the same model.
pub enum ModelVariant {
    /// Full-precision network on the [`mdl_nn::Layer::forward_eval`] path.
    F32(Sequential),
    /// Int8 network on the [`mdl_nn::QuantizedModel`] path: every matrix
    /// product runs in the int8 SIMD kernel, no f32 weight round-trip.
    Int8(QuantizedModel),
}

impl From<Sequential> for ModelVariant {
    fn from(model: Sequential) -> Self {
        Self::F32(model)
    }
}

impl From<QuantizedModel> for ModelVariant {
    fn from(model: QuantizedModel) -> Self {
        Self::Int8(model)
    }
}

impl std::fmt::Debug for ModelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelVariant")
            .field("precision", &self.precision())
            .field("layers", &self.layer_infos().len())
            .finish()
    }
}

impl ModelVariant {
    /// Read-only forward pass; softmax-ready scores for either precision.
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        match self {
            Self::F32(m) => m.forward_eval(x),
            Self::Int8(m) => m.forward_eval(x),
        }
    }

    /// Per-layer structural descriptions (identical kinds/dims/macs for
    /// both precisions of the same architecture).
    pub fn layer_infos(&self) -> Vec<LayerInfo> {
        match self {
            Self::F32(m) => m.layer_infos(),
            Self::Int8(m) => m.layer_infos(),
        }
    }

    /// Input width expected by the first layer (0 for an empty model).
    pub fn input_dim(&self) -> usize {
        self.layer_infos().first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// The f32 network, when this is the f32 variant. Split placement and
    /// mid-network batch resume are f32-only — the quantized path has no
    /// layer-boundary f32 representation to ship.
    pub fn as_f32(&self) -> Option<&Sequential> {
        match self {
            Self::F32(m) => Some(m),
            Self::Int8(_) => None,
        }
    }

    /// `"f32"` or `"int8"` — the label experiments report.
    pub fn precision(&self) -> &'static str {
        match self {
            Self::F32(_) => "f32",
            Self::Int8(_) => "int8",
        }
    }

    /// Bytes per weight as the placement cost model prices transfers:
    /// 4.0 for f32, 1.0 for int8.
    pub fn bytes_per_weight(&self) -> f64 {
        match self {
            Self::F32(_) => 4.0,
            Self::Int8(_) => 1.0,
        }
    }
}

/// One immutable, shareable model version.
pub struct VersionedModel {
    /// Monotonically increasing version, starting at 1.
    pub version: u64,
    /// The frozen network, in either precision; inference goes through
    /// the read-only eval path of the [`ModelVariant`].
    pub model: ModelVariant,
}

/// Holds the current [`VersionedModel`] and swaps it atomically.
///
/// For staged rollouts the registry can additionally **pin** a known-good
/// version: [`ModelRegistry::pin_current`] remembers the current snapshot,
/// and [`ModelRegistry::rollback_to_pin`] restores it atomically when a
/// health gate fails. A rollback re-serves the pinned version under its
/// *original* version number — version numbers are monotone across swaps
/// but a rollback deliberately resolves back to the pinned one.
pub struct ModelRegistry {
    current: RwLock<Arc<VersionedModel>>,
    pinned: RwLock<Option<Arc<VersionedModel>>>,
    /// Highest version ever issued; swaps allocate from here so a version
    /// number is never reused even after a rollback.
    high_water: AtomicU64,
    swaps: AtomicU64,
    reverts: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("version", &self.current().version)
            .field("swaps", &self.swap_count())
            .finish()
    }
}

impl ModelRegistry {
    /// Registers an initial model (either precision) as version 1.
    pub fn new(model: impl Into<ModelVariant>) -> Self {
        Self {
            current: RwLock::new(Arc::new(VersionedModel { version: 1, model: model.into() })),
            pinned: RwLock::new(None),
            high_water: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
            reverts: AtomicU64::new(0),
        }
    }

    /// Decodes a saved artifact (see [`mdl_nn::saved`]) as version 1.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadModelError> {
        Ok(Self::new(load_model(bytes)?))
    }

    /// Snapshot of the current version (cheap: one `Arc` clone).
    pub fn current(&self) -> Arc<VersionedModel> {
        Arc::clone(&self.current.read().expect("registry lock"))
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Number of completed swaps.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Atomically replaces the model (either precision), returning the
    /// new version number. Readers holding the previous snapshot are
    /// unaffected — hot-swapping f32 ↔ int8 versions of the same model
    /// is an ordinary swap.
    pub fn swap(&self, model: impl Into<ModelVariant>) -> u64 {
        let mut slot = self.current.write().expect("registry lock");
        let version = self.high_water.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Arc::new(VersionedModel { version, model: model.into() });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Decodes and swaps in a saved artifact. The current model is kept
    /// untouched if the bytes fail validation — a corrupt upload can never
    /// take down serving.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn swap_bytes(&self, bytes: &[u8]) -> Result<u64, LoadModelError> {
        let model = load_model(bytes)?;
        Ok(self.swap(model))
    }

    /// Lowers a `mdl_compress::quantize` artifact straight onto the int8
    /// execution path ([`CompressedModel::to_quantized`] — no f32 weight
    /// round-trip) and swaps it in, returning the new version number.
    pub fn swap_compressed(&self, artifact: &CompressedModel) -> u64 {
        self.swap(artifact.to_quantized())
    }

    /// Pins the current version as the rollback target, returning its
    /// version number. Replaces any earlier pin.
    pub fn pin_current(&self) -> u64 {
        let snapshot = self.current();
        let version = snapshot.version;
        *self.pinned.write().expect("registry pin lock") = Some(snapshot);
        version
    }

    /// Version number of the pinned rollback target, if any.
    pub fn pinned_version(&self) -> Option<u64> {
        self.pinned.read().expect("registry pin lock").as_ref().map(|m| m.version)
    }

    /// Atomically restores the pinned version, returning its version
    /// number, or `None` when nothing is pinned. The pin stays in place so
    /// repeated gate failures keep resolving to the same known-good model.
    /// Counted under [`ModelRegistry::revert_count`], not as a swap.
    pub fn rollback_to_pin(&self) -> Option<u64> {
        let pinned = self.pinned.read().expect("registry pin lock").clone()?;
        let version = pinned.version;
        *self.current.write().expect("registry lock") = pinned;
        self.reverts.fetch_add(1, Ordering::Relaxed);
        Some(version)
    }

    /// Number of completed rollbacks to a pinned version.
    pub fn revert_count(&self) -> u64 {
        self.reverts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{save_model, Activation, Dense, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(4, 3, Activation::Identity, &mut rng));
        n
    }

    #[test]
    fn swap_bumps_version_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::new(net(1));
        let before = reg.current();
        assert_eq!(before.version, 1);
        assert_eq!(reg.swap(net(2)), 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.swap_count(), 1);
        // the old snapshot still works after the swap
        let x = mdl_tensor::Matrix::ones(1, 4);
        assert_eq!(before.model.forward_eval(&x).cols(), 3);
    }

    #[test]
    fn bad_bytes_leave_current_model_in_place() {
        let reg = ModelRegistry::new(net(3));
        assert!(reg.swap_bytes(b"not a model").is_err());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
    }

    #[test]
    fn pin_and_rollback_restore_the_exact_snapshot() {
        let reg = ModelRegistry::new(net(5));
        assert_eq!(reg.rollback_to_pin(), None, "nothing pinned yet");
        assert_eq!(reg.pin_current(), 1);
        assert_eq!(reg.pinned_version(), Some(1));
        let pinned = reg.current();
        assert_eq!(reg.swap(net(6)), 2);
        assert_eq!(reg.rollback_to_pin(), Some(1));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.revert_count(), 1);
        assert!(Arc::ptr_eq(&pinned, &reg.current()), "same snapshot, not a rebuild");
        // the pin survives, so a repeat failure resolves identically,
        // and version numbers are never reused after a rollback
        assert_eq!(reg.swap(net(7)), 3);
        assert_eq!(reg.rollback_to_pin(), Some(1));
        assert_eq!(reg.revert_count(), 2);
    }

    #[test]
    fn hot_swaps_between_f32_and_int8_of_the_same_model() {
        let mut f32_model = net(8);
        let quantized = QuantizedModel::from_model(&mut f32_model).expect("dense quantizes");
        let reg = ModelRegistry::new(f32_model);
        assert_eq!(reg.current().model.precision(), "f32");
        let x = mdl_tensor::Matrix::ones(1, 4);
        let f32_out = reg.current().model.forward_eval(&x);

        assert_eq!(reg.swap(quantized), 2);
        let snap = reg.current();
        assert_eq!(snap.model.precision(), "int8");
        assert_eq!(snap.model.bytes_per_weight(), 1.0);
        assert_eq!(snap.model.input_dim(), 4);
        let int8_out = snap.model.forward_eval(&x);
        assert_eq!(int8_out.shape(), f32_out.shape());
        for (a, b) in f32_out.as_slice().iter().zip(int8_out.as_slice()) {
            assert!((a - b).abs() < 0.1, "precisions diverged: {a} vs {b}");
        }
        // and back: the variant swap is an ordinary registry swap
        assert_eq!(reg.swap(net(8)), 3);
        assert_eq!(reg.current().model.precision(), "f32");
    }

    #[test]
    fn round_trips_saved_artifacts() {
        let mut original = net(4);
        let bytes = save_model(&mut original).expect("dense net saves");
        let reg = ModelRegistry::from_bytes(&bytes).expect("valid artifact");
        let x = mdl_tensor::Matrix::ones(2, 4);
        assert!(reg.current().model.forward_eval(&x).approx_eq(&original.forward_eval(&x), 0.0));
    }
}
