//! Versioned model registry with atomic hot swap.
//!
//! Serving keeps exactly one *current* model behind an `Arc`; workers grab
//! a snapshot per batch, so a swap never interrupts an in-flight batch —
//! it finishes on the version it started with while new batches pick up
//! the replacement. This is the paper's §III "update the model without
//! shipping a new app" concern, applied to the serving tier.

use mdl_nn::saved::{load_model, LoadModelError};
use mdl_nn::Sequential;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One immutable, shareable model version.
pub struct VersionedModel {
    /// Monotonically increasing version, starting at 1.
    pub version: u64,
    /// The frozen network; inference goes through the read-only
    /// [`mdl_nn::Layer::forward_eval`] path.
    pub model: Sequential,
}

/// Holds the current [`VersionedModel`] and swaps it atomically.
pub struct ModelRegistry {
    current: RwLock<Arc<VersionedModel>>,
    swaps: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("version", &self.current().version)
            .field("swaps", &self.swap_count())
            .finish()
    }
}

impl ModelRegistry {
    /// Registers an initial model as version 1.
    pub fn new(model: Sequential) -> Self {
        Self {
            current: RwLock::new(Arc::new(VersionedModel { version: 1, model })),
            swaps: AtomicU64::new(0),
        }
    }

    /// Decodes a saved artifact (see [`mdl_nn::saved`]) as version 1.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadModelError> {
        Ok(Self::new(load_model(bytes)?))
    }

    /// Snapshot of the current version (cheap: one `Arc` clone).
    pub fn current(&self) -> Arc<VersionedModel> {
        Arc::clone(&self.current.read().expect("registry lock"))
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Number of completed swaps.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Atomically replaces the model, returning the new version number.
    /// Readers holding the previous snapshot are unaffected.
    pub fn swap(&self, model: Sequential) -> u64 {
        let mut slot = self.current.write().expect("registry lock");
        let version = slot.version + 1;
        *slot = Arc::new(VersionedModel { version, model });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Decodes and swaps in a saved artifact. The current model is kept
    /// untouched if the bytes fail validation — a corrupt upload can never
    /// take down serving.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn swap_bytes(&self, bytes: &[u8]) -> Result<u64, LoadModelError> {
        let model = load_model(bytes)?;
        Ok(self.swap(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{save_model, Activation, Dense, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(4, 3, Activation::Identity, &mut rng));
        n
    }

    #[test]
    fn swap_bumps_version_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::new(net(1));
        let before = reg.current();
        assert_eq!(before.version, 1);
        assert_eq!(reg.swap(net(2)), 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.swap_count(), 1);
        // the old snapshot still works after the swap
        let x = mdl_tensor::Matrix::ones(1, 4);
        assert_eq!(before.model.forward_eval(&x).cols(), 3);
    }

    #[test]
    fn bad_bytes_leave_current_model_in_place() {
        let reg = ModelRegistry::new(net(3));
        assert!(reg.swap_bytes(b"not a model").is_err());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
    }

    #[test]
    fn round_trips_saved_artifacts() {
        let mut original = net(4);
        let bytes = save_model(&mut original).expect("dense net saves");
        let reg = ModelRegistry::from_bytes(&bytes).expect("valid artifact");
        let x = mdl_tensor::Matrix::ones(2, 4);
        assert!(reg.current().model.forward_eval(&x).approx_eq(&original.forward_eval(&x), 0.0));
    }
}
