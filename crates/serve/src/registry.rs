//! Versioned model registry with atomic hot swap.
//!
//! Serving keeps exactly one *current* model behind an `Arc`; workers grab
//! a snapshot per batch, so a swap never interrupts an in-flight batch —
//! it finishes on the version it started with while new batches pick up
//! the replacement. This is the paper's §III "update the model without
//! shipping a new app" concern, applied to the serving tier.

use mdl_nn::saved::{load_model, LoadModelError};
use mdl_nn::Sequential;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One immutable, shareable model version.
pub struct VersionedModel {
    /// Monotonically increasing version, starting at 1.
    pub version: u64,
    /// The frozen network; inference goes through the read-only
    /// [`mdl_nn::Layer::forward_eval`] path.
    pub model: Sequential,
}

/// Holds the current [`VersionedModel`] and swaps it atomically.
///
/// For staged rollouts the registry can additionally **pin** a known-good
/// version: [`ModelRegistry::pin_current`] remembers the current snapshot,
/// and [`ModelRegistry::rollback_to_pin`] restores it atomically when a
/// health gate fails. A rollback re-serves the pinned version under its
/// *original* version number — version numbers are monotone across swaps
/// but a rollback deliberately resolves back to the pinned one.
pub struct ModelRegistry {
    current: RwLock<Arc<VersionedModel>>,
    pinned: RwLock<Option<Arc<VersionedModel>>>,
    /// Highest version ever issued; swaps allocate from here so a version
    /// number is never reused even after a rollback.
    high_water: AtomicU64,
    swaps: AtomicU64,
    reverts: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("version", &self.current().version)
            .field("swaps", &self.swap_count())
            .finish()
    }
}

impl ModelRegistry {
    /// Registers an initial model as version 1.
    pub fn new(model: Sequential) -> Self {
        Self {
            current: RwLock::new(Arc::new(VersionedModel { version: 1, model })),
            pinned: RwLock::new(None),
            high_water: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
            reverts: AtomicU64::new(0),
        }
    }

    /// Decodes a saved artifact (see [`mdl_nn::saved`]) as version 1.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadModelError> {
        Ok(Self::new(load_model(bytes)?))
    }

    /// Snapshot of the current version (cheap: one `Arc` clone).
    pub fn current(&self) -> Arc<VersionedModel> {
        Arc::clone(&self.current.read().expect("registry lock"))
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Number of completed swaps.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Atomically replaces the model, returning the new version number.
    /// Readers holding the previous snapshot are unaffected.
    pub fn swap(&self, model: Sequential) -> u64 {
        let mut slot = self.current.write().expect("registry lock");
        let version = self.high_water.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Arc::new(VersionedModel { version, model });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Decodes and swaps in a saved artifact. The current model is kept
    /// untouched if the bytes fail validation — a corrupt upload can never
    /// take down serving.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn swap_bytes(&self, bytes: &[u8]) -> Result<u64, LoadModelError> {
        let model = load_model(bytes)?;
        Ok(self.swap(model))
    }

    /// Pins the current version as the rollback target, returning its
    /// version number. Replaces any earlier pin.
    pub fn pin_current(&self) -> u64 {
        let snapshot = self.current();
        let version = snapshot.version;
        *self.pinned.write().expect("registry pin lock") = Some(snapshot);
        version
    }

    /// Version number of the pinned rollback target, if any.
    pub fn pinned_version(&self) -> Option<u64> {
        self.pinned.read().expect("registry pin lock").as_ref().map(|m| m.version)
    }

    /// Atomically restores the pinned version, returning its version
    /// number, or `None` when nothing is pinned. The pin stays in place so
    /// repeated gate failures keep resolving to the same known-good model.
    /// Counted under [`ModelRegistry::revert_count`], not as a swap.
    pub fn rollback_to_pin(&self) -> Option<u64> {
        let pinned = self.pinned.read().expect("registry pin lock").clone()?;
        let version = pinned.version;
        *self.current.write().expect("registry lock") = pinned;
        self.reverts.fetch_add(1, Ordering::Relaxed);
        Some(version)
    }

    /// Number of completed rollbacks to a pinned version.
    pub fn revert_count(&self) -> u64 {
        self.reverts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{save_model, Activation, Dense, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(4, 3, Activation::Identity, &mut rng));
        n
    }

    #[test]
    fn swap_bumps_version_and_keeps_old_snapshots_alive() {
        let reg = ModelRegistry::new(net(1));
        let before = reg.current();
        assert_eq!(before.version, 1);
        assert_eq!(reg.swap(net(2)), 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.swap_count(), 1);
        // the old snapshot still works after the swap
        let x = mdl_tensor::Matrix::ones(1, 4);
        assert_eq!(before.model.forward_eval(&x).cols(), 3);
    }

    #[test]
    fn bad_bytes_leave_current_model_in_place() {
        let reg = ModelRegistry::new(net(3));
        assert!(reg.swap_bytes(b"not a model").is_err());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
    }

    #[test]
    fn pin_and_rollback_restore_the_exact_snapshot() {
        let reg = ModelRegistry::new(net(5));
        assert_eq!(reg.rollback_to_pin(), None, "nothing pinned yet");
        assert_eq!(reg.pin_current(), 1);
        assert_eq!(reg.pinned_version(), Some(1));
        let pinned = reg.current();
        assert_eq!(reg.swap(net(6)), 2);
        assert_eq!(reg.rollback_to_pin(), Some(1));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.revert_count(), 1);
        assert!(Arc::ptr_eq(&pinned, &reg.current()), "same snapshot, not a rebuild");
        // the pin survives, so a repeat failure resolves identically,
        // and version numbers are never reused after a rollback
        assert_eq!(reg.swap(net(7)), 3);
        assert_eq!(reg.rollback_to_pin(), Some(1));
        assert_eq!(reg.revert_count(), 2);
    }

    #[test]
    fn round_trips_saved_artifacts() {
        let mut original = net(4);
        let bytes = save_model(&mut original).expect("dense net saves");
        let reg = ModelRegistry::from_bytes(&bytes).expect("valid artifact");
        let x = mdl_tensor::Matrix::ones(2, 4);
        assert!(reg.current().model.forward_eval(&x).approx_eq(&original.forward_eval(&x), 0.0));
    }
}
