//! Placement-aware admission routing.
//!
//! Each request arrives with a [`ClientProfile`] describing the device it
//! came from and the network it sits on. The router evaluates the
//! `mdl-mobile` cost model over the *current* model version and picks the
//! cheapest placement (Figs. 2–3 of the paper): run the whole model on the
//! device, ship the input to the cloud, or split the network and ship the
//! intermediate representation. Decisions are memoised per
//! `(model version, profile, link state)` since the cost model is
//! deterministic.
//!
//! The router can also consult the *observed* state of the client's link
//! as reported by the `mdl-net` fabric ([`Router::decide_with_link`]):
//! a [`LinkState::Down`] link forces local execution regardless of the
//! nominal profile, and a degraded link has its profile derated before
//! ranking, so stragglers and flaky radios steer traffic back on-device.

use crate::registry::VersionedModel;
use mdl_mobile::{rank_placements, DeviceProfile, NetworkProfile, Placement, Scenario};
use mdl_net::LinkState;
use std::collections::HashMap;
use std::sync::Mutex;

/// Coarse device classes exposed by the `mdl-mobile` simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Battery- and compute-starved wearable.
    Wearable,
    /// Mid-range phone.
    Midrange,
    /// Flagship phone.
    Flagship,
}

/// Link classes exposed by the `mdl-mobile` simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkClass {
    /// Home/office Wi-Fi.
    Wifi,
    /// LTE cellular.
    Lte,
    /// Legacy 3G cellular.
    ThreeG,
    /// No connectivity: everything must run on-device.
    Offline,
}

/// Where a request comes from; drives the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientProfile {
    /// The requesting device.
    pub device: DeviceClass,
    /// Its current link.
    pub network: NetworkClass,
}

impl ClientProfile {
    /// Materialises the simulator profiles.
    pub fn profiles(&self) -> (DeviceProfile, NetworkProfile) {
        let device = match self.device {
            DeviceClass::Wearable => DeviceProfile::wearable(),
            DeviceClass::Midrange => DeviceProfile::midrange_phone(),
            DeviceClass::Flagship => DeviceProfile::flagship_phone(),
        };
        let network = match self.network {
            NetworkClass::Wifi => NetworkProfile::wifi(),
            NetworkClass::Lte => NetworkProfile::lte(),
            NetworkClass::ThreeG => NetworkProfile::cellular_3g(),
            NetworkClass::Offline => NetworkProfile::offline(),
        };
        (device, network)
    }
}

/// The execution path chosen for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Whole model on the requesting device; never queued at the server.
    Local,
    /// Raw input to the server, full model through the batching pipeline.
    Cloud,
    /// First `local_layers` on the device, remainder at the server.
    Split {
        /// Layers executed on the device before the upload.
        local_layers: usize,
    },
    /// Answered by the server's early-exit fallback under overload.
    EarlyExit,
}

/// Memoising placement router.
#[derive(Default)]
pub struct Router {
    cache: Mutex<HashMap<(u64, ClientProfile, LinkState), Route>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chooses the cheapest-latency placement of `snapshot` for `profile`,
    /// assuming the link is at its nominal quality.
    pub fn decide(&self, snapshot: &VersionedModel, profile: ClientProfile) -> Route {
        self.decide_with_link(snapshot, profile, LinkState::Up)
    }

    /// Chooses a placement with the fabric's *observed* link state folded
    /// in: a down link never leaves the device, and a degraded link has
    /// its bandwidth/latency derated by the observed slowdown before the
    /// cost model runs.
    pub fn decide_with_link(
        &self,
        snapshot: &VersionedModel,
        profile: ClientProfile,
        link: LinkState,
    ) -> Route {
        if link == LinkState::Down {
            return Route::Local;
        }
        let key = (snapshot.version, profile, link);
        if let Some(route) = self.cache.lock().expect("router lock").get(&key) {
            return *route;
        }
        let route = Self::evaluate(snapshot, profile, link);
        self.cache.lock().expect("router lock").insert(key, route);
        route
    }

    /// A nominal profile derated by the link's observed slowdown: the
    /// effective bandwidth shrinks and the latency stretches by the same
    /// factor, mirroring how retries and loss inflate transfer times in
    /// the fabric.
    fn derate(network: NetworkProfile, link: LinkState) -> NetworkProfile {
        match link {
            LinkState::Degraded { slowdown_pct } => {
                let factor = 1.0 + slowdown_pct as f64 / 100.0;
                NetworkProfile {
                    up_bytes_per_sec: network.up_bytes_per_sec / factor,
                    down_bytes_per_sec: network.down_bytes_per_sec / factor,
                    one_way_latency_s: network.one_way_latency_s * factor,
                    ..network
                }
            }
            LinkState::Up | LinkState::Down => network,
        }
    }

    fn evaluate(snapshot: &VersionedModel, profile: ClientProfile, link: LinkState) -> Route {
        let layers = snapshot.model.layer_infos();
        let in_dim = layers.first().map(|l| l.in_dim).unwrap_or(0);
        let out_dim = layers.last().map(|l| l.out_dim).unwrap_or(0);
        let scenario = Scenario {
            layers,
            input_bytes: 4 * in_dim as u64,
            result_bytes: 4 * out_dim as u64,
            bytes_per_weight: snapshot.model.bytes_per_weight(),
        };
        let (device, network) = profile.profiles();
        let network = Self::derate(network, link);
        let cloud = DeviceProfile::cloud_server();
        let ranked = rank_placements(&scenario, &device, &cloud, &network, false);
        match ranked.first().map(|(p, _)| *p) {
            Some(Placement::Cloud) => Route::Cloud,
            // An int8 snapshot cannot split — there is no f32 layer
            // boundary to ship — so the next-best offload is the cloud.
            Some(Placement::Split { .. }) if snapshot.model.as_f32().is_none() => Route::Cloud,
            Some(Placement::Split { local_layers }) => Route::Split { local_layers },
            // OnDevice, or an empty model: nothing for the server to do.
            _ => Route::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshot(widths: &[usize], version: u64) -> VersionedModel {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Sequential::new();
        for w in widths.windows(2) {
            net.push(Dense::new(w[0], w[1], Activation::Relu, &mut rng));
        }
        VersionedModel { version, model: net.into() }
    }

    #[test]
    fn offline_always_routes_local() {
        let snap = snapshot(&[64, 512, 10], 1);
        let router = Router::new();
        for device in [DeviceClass::Wearable, DeviceClass::Midrange, DeviceClass::Flagship] {
            let route =
                router.decide(&snap, ClientProfile { device, network: NetworkClass::Offline });
            assert_eq!(route, Route::Local);
        }
    }

    #[test]
    fn weak_device_on_wifi_offloads_big_model() {
        // VGG-fc-sized stack: far beyond a wearable's budget
        let snap = snapshot(&[784, 4096, 4096, 4096, 10], 1);
        let router = Router::new();
        let route = router.decide(
            &snap,
            ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi },
        );
        assert_ne!(route, Route::Local, "wearable should offload");
    }

    #[test]
    fn decisions_are_memoised_per_version() {
        let router = Router::new();
        let profile = ClientProfile { device: DeviceClass::Midrange, network: NetworkClass::Wifi };
        let a = router.decide(&snapshot(&[64, 32, 10], 1), profile);
        let b = router.decide(&snapshot(&[64, 32, 10], 1), profile);
        assert_eq!(a, b);
        assert_eq!(router.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn down_link_overrides_nominal_profile() {
        // nominally this wearable-on-wifi offloads; a down link pins it local
        let snap = snapshot(&[784, 4096, 4096, 4096, 10], 1);
        let router = Router::new();
        let profile = ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi };
        assert_ne!(router.decide(&snap, profile), Route::Local);
        assert_eq!(router.decide_with_link(&snap, profile, LinkState::Down), Route::Local);
        // the Down shortcut never pollutes the cache
        assert_eq!(router.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn heavy_degradation_steers_back_on_device() {
        // the wearable offloads this stack on healthy wifi (~21 ms round
        // trip vs ~184 ms local), but a link crawling at 21x slowdown
        // (~430 ms round trip) loses to local compute
        let snap = snapshot(&[784, 4096, 4096, 4096, 10], 1);
        let router = Router::new();
        let profile = ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi };
        let healthy = router.decide_with_link(&snap, profile, LinkState::Up);
        let degraded =
            router.decide_with_link(&snap, profile, LinkState::Degraded { slowdown_pct: 2000 });
        assert_ne!(healthy, Route::Local, "healthy wifi should offload: {healthy:?}");
        assert_eq!(degraded, Route::Local);
        // distinct link states memoise separately
        assert_eq!(router.cache.lock().unwrap().len(), 2);
    }
}
