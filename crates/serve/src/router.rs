//! Placement-aware admission routing.
//!
//! Each request arrives with a [`ClientProfile`] describing the device it
//! came from and the network it sits on. The router evaluates the
//! `mdl-mobile` cost model over the *current* model version and picks the
//! cheapest placement (Figs. 2–3 of the paper): run the whole model on the
//! device, ship the input to the cloud, or split the network and ship the
//! intermediate representation. Decisions are memoised per
//! `(model version, profile)` since the cost model is deterministic.

use crate::registry::VersionedModel;
use mdl_mobile::{rank_placements, DeviceProfile, NetworkProfile, Placement, Scenario};
use std::collections::HashMap;
use std::sync::Mutex;

/// Coarse device classes exposed by the `mdl-mobile` simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Battery- and compute-starved wearable.
    Wearable,
    /// Mid-range phone.
    Midrange,
    /// Flagship phone.
    Flagship,
}

/// Link classes exposed by the `mdl-mobile` simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkClass {
    /// Home/office Wi-Fi.
    Wifi,
    /// LTE cellular.
    Lte,
    /// Legacy 3G cellular.
    ThreeG,
    /// No connectivity: everything must run on-device.
    Offline,
}

/// Where a request comes from; drives the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientProfile {
    /// The requesting device.
    pub device: DeviceClass,
    /// Its current link.
    pub network: NetworkClass,
}

impl ClientProfile {
    /// Materialises the simulator profiles.
    pub fn profiles(&self) -> (DeviceProfile, NetworkProfile) {
        let device = match self.device {
            DeviceClass::Wearable => DeviceProfile::wearable(),
            DeviceClass::Midrange => DeviceProfile::midrange_phone(),
            DeviceClass::Flagship => DeviceProfile::flagship_phone(),
        };
        let network = match self.network {
            NetworkClass::Wifi => NetworkProfile::wifi(),
            NetworkClass::Lte => NetworkProfile::lte(),
            NetworkClass::ThreeG => NetworkProfile::cellular_3g(),
            NetworkClass::Offline => NetworkProfile::offline(),
        };
        (device, network)
    }
}

/// The execution path chosen for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Whole model on the requesting device; never queued at the server.
    Local,
    /// Raw input to the server, full model through the batching pipeline.
    Cloud,
    /// First `local_layers` on the device, remainder at the server.
    Split {
        /// Layers executed on the device before the upload.
        local_layers: usize,
    },
    /// Answered by the server's early-exit fallback under overload.
    EarlyExit,
}

/// Memoising placement router.
#[derive(Default)]
pub struct Router {
    cache: Mutex<HashMap<(u64, ClientProfile), Route>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chooses the cheapest-latency placement of `snapshot` for `profile`.
    pub fn decide(&self, snapshot: &VersionedModel, profile: ClientProfile) -> Route {
        let key = (snapshot.version, profile);
        if let Some(route) = self.cache.lock().expect("router lock").get(&key) {
            return *route;
        }
        let route = Self::evaluate(snapshot, profile);
        self.cache.lock().expect("router lock").insert(key, route);
        route
    }

    fn evaluate(snapshot: &VersionedModel, profile: ClientProfile) -> Route {
        let layers = snapshot.model.layer_infos();
        let in_dim = layers.first().map(|l| l.in_dim).unwrap_or(0);
        let out_dim = layers.last().map(|l| l.out_dim).unwrap_or(0);
        let scenario = Scenario {
            layers,
            input_bytes: 4 * in_dim as u64,
            result_bytes: 4 * out_dim as u64,
            bytes_per_weight: 4.0,
        };
        let (device, network) = profile.profiles();
        let cloud = DeviceProfile::cloud_server();
        let ranked = rank_placements(&scenario, &device, &cloud, &network, false);
        match ranked.first().map(|(p, _)| *p) {
            Some(Placement::Cloud) => Route::Cloud,
            Some(Placement::Split { local_layers }) => Route::Split { local_layers },
            // OnDevice, or an empty model: nothing for the server to do.
            _ => Route::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshot(widths: &[usize], version: u64) -> VersionedModel {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Sequential::new();
        for w in widths.windows(2) {
            net.push(Dense::new(w[0], w[1], Activation::Relu, &mut rng));
        }
        VersionedModel { version, model: net }
    }

    #[test]
    fn offline_always_routes_local() {
        let snap = snapshot(&[64, 512, 10], 1);
        let router = Router::new();
        for device in [DeviceClass::Wearable, DeviceClass::Midrange, DeviceClass::Flagship] {
            let route =
                router.decide(&snap, ClientProfile { device, network: NetworkClass::Offline });
            assert_eq!(route, Route::Local);
        }
    }

    #[test]
    fn weak_device_on_wifi_offloads_big_model() {
        // VGG-fc-sized stack: far beyond a wearable's budget
        let snap = snapshot(&[784, 4096, 4096, 4096, 10], 1);
        let router = Router::new();
        let route = router.decide(
            &snap,
            ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi },
        );
        assert_ne!(route, Route::Local, "wearable should offload");
    }

    #[test]
    fn decisions_are_memoised_per_version() {
        let router = Router::new();
        let profile = ClientProfile { device: DeviceClass::Midrange, network: NetworkClass::Wifi };
        let a = router.decide(&snapshot(&[64, 32, 10], 1), profile);
        let b = router.decide(&snapshot(&[64, 32, 10], 1), profile);
        assert_eq!(a, b);
        assert_eq!(router.cache.lock().unwrap().len(), 1);
    }
}
