//! The serving runtime: a bounded admission queue feeding a dynamic
//! micro-batching scheduler and a pool of inference workers that share
//! the current model snapshot behind an `Arc`.
//!
//! Request lifecycle:
//!
//! ```text
//! submit ──router──▶ Local: answered inline (simulated on-device run)
//!                 ─▶ Cloud / Split: bounded queue ─▶ scheduler coalesces
//!                    into batches (≤ max_batch, ≤ max_wait) ─▶ workers
//!                 ─▶ queue too deep: shed to the early-exit fallback
//! ```
//!
//! Hot swap: [`InferenceServer::swap_artifact`] atomically replaces the
//! registry's model. Batches already dispatched finish on the snapshot
//! they grabbed; a batch whose input no longer matches the new
//! architecture at its entry layer falls back to the version the request
//! was admitted under, so in-flight requests are never dropped.

use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::registry::{ModelRegistry, ModelVariant, VersionedModel};
use crate::router::{ClientProfile, Route, Router};
use crate::slo::SloClass;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use mdl_compress::CompressedModel;
use mdl_nn::saved::LoadModelError;
use mdl_nn::{Layer, PlanCache, PlanLookup, PlanModel, PlanOptions, QuantizedModel, Sequential};
use mdl_obs::Obs;
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Inference worker threads.
    pub workers: usize,
    /// Largest batch the scheduler will coalesce.
    pub max_batch: usize,
    /// Longest a request may wait for co-batching before dispatch.
    pub max_wait: Duration,
    /// Capacity of the admission queue; senders block when it is full
    /// (backpressure).
    pub queue_capacity: usize,
    /// Queue depth above which cloud-bound requests are shed to the
    /// early-exit fallback (when one is installed). This is the
    /// [`SloClass::Standard`] threshold; classed submissions scale it by
    /// class ([`SloClass::shed_depth`]): `BestEffort` sheds at a quarter
    /// of this depth, `Interactive` at four times it.
    pub shed_queue_depth: usize,
    /// GEMM kernel threads for the batch forward pass (`None` keeps the
    /// process default). Workers already run in parallel, so this stays
    /// low unless batches are large; results are bit-identical either way.
    pub kernel_threads: Option<usize>,
    /// Observability session the server records into (`serve.*` counters,
    /// latency/batch histograms and `serve.batch` spans). `None` starts a
    /// private wall-clock session; pass a sim-clock [`Obs`] to get
    /// deterministic latency readouts.
    pub obs: Option<Obs>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            shed_queue_depth: 64,
            kernel_threads: None,
            obs: None,
        }
    }
}

/// The answer to one inference request.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// Softmax class probabilities.
    pub probs: Vec<f32>,
    /// Index of the most probable class.
    pub argmax: usize,
    /// Model version that produced the answer.
    pub model_version: u64,
    /// The execution path the request took.
    pub route: Route,
    /// SLO class the request was submitted under (`None` for the
    /// unclassed [`ServeClient::submit`] path).
    pub class: Option<SloClass>,
    /// Size of the batch this request was served in (1 for inline paths).
    pub batch_size: usize,
    /// Submit→response latency.
    pub latency: Duration,
}

/// A queued cloud-bound request.
struct Job {
    /// Feature row; raw input for [`Route::Cloud`], the intermediate
    /// representation for [`Route::Split`].
    input: Vec<f32>,
    /// First layer the server must run.
    entry_layer: usize,
    /// Model version the request was admitted under.
    pinned: Arc<VersionedModel>,
    route: Route,
    /// SLO class (`None` for the legacy unclassed submit path, which
    /// queues and sheds like [`SloClass::Standard`]).
    class: Option<SloClass>,
    resp: Sender<InferenceResponse>,
    /// Admission time on the observability clock.
    submitted_ns: u64,
}

struct Batch {
    entry_layer: usize,
    jobs: Vec<Job>,
}

struct Shared {
    registry: ModelRegistry,
    router: Router,
    obs: Obs,
    metrics: ServerMetrics,
    /// Early-exit model (raw input → class scores) used for shedding.
    fallback: Option<Sequential>,
    config: ServeConfig,
}

/// Runs `model` from layer `from` onwards through the read-only path.
fn eval_from(model: &Sequential, x: &Matrix, from: usize) -> Matrix {
    let mut cur = x.clone();
    for layer in &model.layers()[from..] {
        cur = layer.forward_eval(&cur);
    }
    cur
}

/// Runs only the first `to` layers of `model`.
fn eval_prefix(model: &Sequential, x: &Matrix, to: usize) -> Matrix {
    let mut cur = x.clone();
    for layer in &model.layers()[..to] {
        cur = layer.forward_eval(&cur);
    }
    cur
}

/// Runs either precision from layer `from`. A non-zero entry layer only
/// ever reaches an f32 snapshot: split placement is f32-only (the router
/// guarantees it) and the worker compat check re-verifies before resume.
fn variant_eval_from(model: &ModelVariant, x: &Matrix, from: usize) -> Matrix {
    if from == 0 {
        model.forward_eval(x)
    } else {
        eval_from(model.as_f32().expect("mid-network resume is f32-only"), x, from)
    }
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Error returned by [`ServeClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The server has shut down.
    Shutdown,
    /// The input row does not match the current model's input width
    /// (e.g. a hot swap changed the architecture).
    WidthMismatch {
        /// Input width of the current model.
        expected: usize,
        /// Width of the submitted row.
        found: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shutdown => write!(f, "inference server has shut down"),
            Self::WidthMismatch { expected, found } => {
                write!(f, "input has {found} features, current model expects {expected}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle for submitting requests; clone freely across threads.
pub struct ServeClient {
    jobs: Sender<Job>,
    shared: Arc<Shared>,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        Self { jobs: self.jobs.clone(), shared: Arc::clone(&self.shared) }
    }
}

impl ServeClient {
    /// Submits one example (a feature row of the model's input width) and
    /// returns a receiver that yields the [`InferenceResponse`].
    ///
    /// Routing happens at admission: locally-placed requests are answered
    /// inline, cloud-bound requests enter the batching queue (blocking
    /// when it is full), and over the shed threshold cloud-bound requests
    /// are answered by the early-exit fallback instead.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Shutdown`] once the server's scheduler has exited,
    /// or [`SubmitError::WidthMismatch`] when the row does not fit the
    /// current model (a hot swap may have changed the input width).
    pub fn submit(
        &self,
        input: &[f32],
        profile: ClientProfile,
    ) -> Result<Receiver<InferenceResponse>, SubmitError> {
        self.submit_inner(input, profile, None)
    }

    /// Submits one example under an explicit [`SloClass`].
    ///
    /// Classed admission replaces the blanket shed threshold with a
    /// strictly class-ordered one (see [`SloClass::shed_depth`]): as the
    /// queue deepens, `BestEffort` requests shed first, `Standard` at the
    /// configured depth, and `Interactive` holds out four times longer.
    /// The scheduler also dispatches coalesced batches in class-priority
    /// order, so interactive work overtakes best-effort work that is
    /// still waiting for a batch.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeClient::submit`].
    pub fn submit_classed(
        &self,
        input: &[f32],
        profile: ClientProfile,
        class: SloClass,
    ) -> Result<Receiver<InferenceResponse>, SubmitError> {
        self.submit_inner(input, profile, Some(class))
    }

    fn submit_inner(
        &self,
        input: &[f32],
        profile: ClientProfile,
        class: Option<SloClass>,
    ) -> Result<Receiver<InferenceResponse>, SubmitError> {
        let submitted_ns = self.shared.metrics.now_ns();
        let snapshot = self.shared.registry.current();
        let expected = snapshot.model.input_dim();
        if input.len() != expected {
            return Err(SubmitError::WidthMismatch { expected, found: input.len() });
        }
        let route = self.shared.router.decide(&snapshot, profile);
        let (resp_tx, resp_rx) = bounded(1);

        let depth = self.jobs.len();
        self.shared.metrics.set_queue_depth(depth);
        let cloud_bound = matches!(route, Route::Cloud | Route::Split { .. });

        // Overload: answer immediately from the local early-exit head.
        // The threshold is class-ordered — best-effort traffic sheds at a
        // quarter of the configured depth, interactive at four times it —
        // so pressure always evicts the lowest class first.
        let shed_depth =
            class.unwrap_or(SloClass::Standard).shed_depth(self.shared.config.shed_queue_depth);
        if cloud_bound && depth >= shed_depth {
            if let Some(fallback) = &self.shared.fallback {
                let x = Matrix::row_vector(input);
                let probs = softmax_rows(&fallback.forward_eval(&x));
                Self::deliver(
                    &self.shared,
                    resp_tx,
                    probs.row(0),
                    snapshot.version,
                    Route::EarlyExit,
                    class,
                    1,
                    submitted_ns,
                );
                return Ok(resp_rx);
            }
        }

        match route {
            Route::Local => {
                // Simulated on-device execution: full model, no queueing.
                let x = Matrix::row_vector(input);
                let probs = softmax_rows(&snapshot.model.forward_eval(&x));
                self.shared.metrics.record_local();
                Self::deliver(
                    &self.shared,
                    resp_tx,
                    probs.row(0),
                    snapshot.version,
                    route,
                    class,
                    1,
                    submitted_ns,
                );
            }
            Route::Cloud => {
                let job = Job {
                    input: input.to_vec(),
                    entry_layer: 0,
                    pinned: snapshot,
                    route,
                    class,
                    resp: resp_tx,
                    submitted_ns,
                };
                self.jobs.send(job).map_err(|_| SubmitError::Shutdown)?;
            }
            Route::Split { local_layers } => match snapshot.model.as_f32() {
                Some(seq) => {
                    // Device-side trunk runs inline; the representation ships.
                    let x = Matrix::row_vector(input);
                    let rep = eval_prefix(seq, &x, local_layers);
                    let job = Job {
                        input: rep.row(0).to_vec(),
                        entry_layer: local_layers,
                        pinned: snapshot,
                        route,
                        class,
                        resp: resp_tx,
                        submitted_ns,
                    };
                    self.jobs.send(job).map_err(|_| SubmitError::Shutdown)?;
                }
                None => {
                    // The router never splits an int8 snapshot; if one
                    // appears here anyway, serve the whole model inline
                    // rather than failing the request.
                    let x = Matrix::row_vector(input);
                    let probs = softmax_rows(&snapshot.model.forward_eval(&x));
                    self.shared.metrics.record_local();
                    Self::deliver(
                        &self.shared,
                        resp_tx,
                        probs.row(0),
                        snapshot.version,
                        Route::Local,
                        class,
                        1,
                        submitted_ns,
                    );
                }
            },
            Route::EarlyExit => unreachable!("router never emits EarlyExit"),
        }
        Ok(resp_rx)
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        shared: &Shared,
        resp: Sender<InferenceResponse>,
        probs: &[f32],
        model_version: u64,
        route: Route,
        class: Option<SloClass>,
        batch_size: usize,
        submitted_ns: u64,
    ) {
        let latency = Duration::from_nanos(shared.metrics.now_ns().saturating_sub(submitted_ns));
        if route == Route::EarlyExit {
            // Shed answers are bookkept apart: their microsecond inline
            // latency must never pollute the served histogram.
            shared.metrics.record_shed(latency);
            if let Some(class) = class {
                shared.metrics.record_class_shed(class);
            }
        } else {
            shared.metrics.record_completed(latency);
            if let Some(class) = class {
                shared.metrics.record_class_completed(class, latency);
            }
        }
        let response = InferenceResponse {
            argmax: argmax(probs),
            probs: probs.to_vec(),
            model_version,
            route,
            class,
            batch_size,
            latency,
        };
        // the requester may have given up; that is not the server's error
        let _ = resp.send(response);
    }
}

/// How long the scheduler sleeps when no requests are pending.
const IDLE_WAIT: Duration = Duration::from_millis(20);

fn scheduler_loop(jobs: Receiver<Job>, batches: Sender<Batch>, shared: Arc<Shared>) {
    // Groups keyed by (class rank, entry layer, input width): only
    // identical shapes can share a matrix, and a class never co-batches
    // with another — otherwise a best-effort arrival could ride an
    // interactive batch past its own shed threshold. Unclassed jobs
    // group at Standard rank. The Instant is the oldest member's arrival.
    let mut pending: HashMap<(usize, usize, usize), (Instant, Vec<Job>)> = HashMap::new();
    let max_wait = shared.config.max_wait;
    let max_batch = shared.config.max_batch.max(1);

    loop {
        shared.metrics.set_queue_depth(jobs.len());
        let now = Instant::now();
        let timeout = pending
            .values()
            .map(|(first, _)| (*first + max_wait).saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_WAIT);
        match jobs.recv_timeout(timeout) {
            Ok(job) => {
                let rank = job.class.unwrap_or(SloClass::Standard).rank();
                let key = (rank, job.entry_layer, job.input.len());
                let group = pending.entry(key).or_insert_with(|| (Instant::now(), Vec::new()));
                group.1.push(job);
                if group.1.len() >= max_batch {
                    let (_, ready) = pending.remove(&key).expect("group exists");
                    dispatch(&batches, key.1, ready, &shared);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let mut expired: Vec<_> = pending
                    .iter()
                    .filter(|(_, (first, _))| now.duration_since(*first) >= max_wait)
                    .map(|(k, _)| *k)
                    .collect();
                // Strict class order: interactive batches enter the
                // worker channel before standard, standard before
                // best-effort — the key sorts by class rank first.
                expired.sort_unstable();
                for key in expired {
                    let (_, ready) = pending.remove(&key).expect("group exists");
                    dispatch(&batches, key.1, ready, &shared);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // all clients and the server handle are gone: drain &
                // stop, still in class order
                let mut keys: Vec<_> = pending.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    let (_, ready) = pending.remove(&key).expect("group exists");
                    dispatch(&batches, key.1, ready, &shared);
                }
                break;
            }
        }
    }
}

fn dispatch(batches: &Sender<Batch>, entry_layer: usize, jobs: Vec<Job>, shared: &Shared) {
    if jobs.is_empty() {
        return;
    }
    shared.metrics.record_batch(jobs.len());
    let _ = batches.send(Batch { entry_layer, jobs });
}

/// Worker-local plan-cache capacity. When exceeded, entries for versions
/// other than the current (and pinned rollback) version are evicted —
/// per-version keying means a hot swap invalidates exactly the swapped
/// version's plans and nothing else.
const PLAN_CACHE_CAP: usize = 32;

fn plan_model(model: &ModelVariant) -> PlanModel<'_> {
    match model {
        ModelVariant::F32(m) => PlanModel::F32(m),
        ModelVariant::Int8(m) => PlanModel::Int8(m),
    }
}

/// Runs the batch through the worker's cached execution plan for
/// `(version, shape)`, compiling one on first sight (see
/// [`mdl_nn::PlanCache`] — rejections are cached too, so the planner
/// runs once per key, not once per batch). Returns `false` when the
/// model can't be planned and the caller falls back to the dynamic path.
fn run_planned(
    plans: &mut PlanCache,
    out: &mut Matrix,
    snapshot: &VersionedModel,
    x: &Matrix,
    shared: &Shared,
) -> bool {
    let pinned = shared.registry.pinned_version();
    let lookup = plans.run(
        snapshot.version,
        plan_model(&snapshot.model),
        x,
        out,
        PlanOptions::default(),
        |v| Some(v) == pinned,
    );
    match lookup {
        PlanLookup::Hit => shared.metrics.record_plan_hit(),
        PlanLookup::Compiled(stats) => shared.metrics.record_plan_miss(Some(stats)),
        PlanLookup::Rejected { fresh: true } => shared.metrics.record_plan_miss(None),
        PlanLookup::Rejected { fresh: false } => {}
    }
    lookup.ran()
}

fn worker_loop(batches: Receiver<Batch>, shared: Arc<Shared>) {
    // Plans are worker-local: no locking, and each worker converges on
    // the few (version, batch shape) keys its batches actually repeat.
    let mut plans = PlanCache::new(PLAN_CACHE_CAP);
    let mut planned_out = Matrix::default();
    while let Ok(batch) = batches.recv() {
        let _span = shared.obs.root_span("serve.batch");
        let n = batch.jobs.len();
        let width = batch.jobs[0].input.len();
        let snapshot = shared.registry.current();
        // A swap may have changed the architecture (or precision) after
        // the client ran its trunk; serve on the current model only when
        // the entry layer still accepts this width. Mid-network resume
        // additionally requires the current snapshot to be f32 — an int8
        // model has no layer-boundary f32 representation to resume from.
        let compatible = if batch.entry_layer == 0 {
            snapshot.model.input_dim() == width
        } else {
            snapshot
                .model
                .as_f32()
                .and_then(|m| m.layers().get(batch.entry_layer))
                .map(|l| l.info().in_dim == width)
                .unwrap_or(false)
        };
        if compatible {
            let x = Matrix::from_fn(n, width, |r, c| batch.jobs[r].input[c]);
            // Whole-model batches run on a shape-specialized plan
            // (compiled once per version × batch shape, zero-alloc and
            // kernel-fused thereafter); mid-network resume and unplannable
            // models keep the dynamic path. Results are bit-identical.
            let planned = batch.entry_layer == 0
                && width > 0
                && run_planned(&mut plans, &mut planned_out, &snapshot, &x, &shared);
            let dynamic;
            let scores = if planned {
                &planned_out
            } else {
                dynamic = variant_eval_from(&snapshot.model, &x, batch.entry_layer);
                &dynamic
            };
            let probs = softmax_rows(scores);
            for (r, job) in batch.jobs.into_iter().enumerate() {
                ServeClient::deliver(
                    &shared,
                    job.resp,
                    probs.row(r),
                    snapshot.version,
                    job.route,
                    job.class,
                    n,
                    job.submitted_ns,
                );
            }
        } else {
            // finish each request on the version it was admitted under
            for job in batch.jobs {
                let x = Matrix::row_vector(&job.input);
                let probs =
                    softmax_rows(&variant_eval_from(&job.pinned.model, &x, job.entry_layer));
                ServeClient::deliver(
                    &shared,
                    job.resp,
                    probs.row(0),
                    job.pinned.version,
                    job.route,
                    job.class,
                    n,
                    job.submitted_ns,
                );
            }
        }
    }
}

/// A running inference server.
///
/// Threads exit when every [`ServeClient`] and the server handle itself
/// are dropped; [`InferenceServer::shutdown`] joins them explicitly
/// (drop all clients first or it will wait for them).
pub struct InferenceServer {
    shared: Arc<Shared>,
    jobs_tx: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
    /// Start time on the observability clock (throughput window origin).
    started_ns: u64,
}

impl InferenceServer {
    /// Starts scheduler and workers around an initial model (f32
    /// [`Sequential`] or int8 [`QuantizedModel`]). `fallback` is the
    /// optional early-exit network used for load shedding; without one,
    /// overload falls back to queue backpressure only.
    pub fn start(
        model: impl Into<ModelVariant>,
        fallback: Option<Sequential>,
        config: ServeConfig,
    ) -> Self {
        if let Some(t) = config.kernel_threads {
            mdl_tensor::kernel::set_threads(t);
        }
        let obs = config.obs.clone().unwrap_or_else(Obs::wall);
        let metrics = ServerMetrics::new(&obs);
        let shared = Arc::new(Shared {
            registry: ModelRegistry::new(model),
            router: Router::new(),
            obs,
            metrics,
            fallback,
            config,
        });
        let (jobs_tx, jobs_rx) = bounded(shared.config.queue_capacity);
        let (batch_tx, batch_rx) = bounded(shared.config.workers.max(1) * 2);

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                scheduler_loop(jobs_rx, batch_tx, shared);
            }));
        }
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = batch_rx.clone();
            threads.push(std::thread::spawn(move || worker_loop(rx, shared)));
        }
        drop(batch_rx);
        let started_ns = shared.metrics.now_ns();
        Self { shared, jobs_tx: Some(jobs_tx), threads, started_ns }
    }

    /// Starts a server from a saved artifact (see [`mdl_nn::saved`]).
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`] for malformed bytes.
    pub fn from_artifact(
        bytes: &[u8],
        fallback: Option<Sequential>,
        config: ServeConfig,
    ) -> Result<Self, LoadModelError> {
        use mdl_nn::saved::load_model;
        Ok(Self::start(load_model(bytes)?, fallback, config))
    }

    /// A new submission handle.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            jobs: self.jobs_tx.as_ref().expect("server running").clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Atomically swaps in a new model from a saved artifact; in-flight
    /// requests complete on the version they were admitted under.
    ///
    /// # Errors
    ///
    /// Returns the decoder's [`LoadModelError`]; the current model stays.
    pub fn swap_artifact(&self, bytes: &[u8]) -> Result<u64, LoadModelError> {
        let version = self.shared.registry.swap_bytes(bytes)?;
        self.shared.metrics.record_swap();
        Ok(version)
    }

    /// Atomically swaps in an already-built model of either precision —
    /// hot-swapping between the f32 and int8 variants of the same model
    /// is an ordinary swap.
    pub fn swap_model(&self, model: impl Into<ModelVariant>) -> u64 {
        let version = self.shared.registry.swap(model);
        self.shared.metrics.record_swap();
        version
    }

    /// Atomically swaps in an int8 model (alias of
    /// [`InferenceServer::swap_model`], kept for call-site clarity).
    pub fn swap_quantized(&self, model: QuantizedModel) -> u64 {
        self.swap_model(model)
    }

    /// Lowers a `mdl_compress::quantize` artifact straight onto the int8
    /// execution path and swaps it in — the artifact's codebook levels
    /// requantize per channel without ever materializing f32 weights.
    pub fn swap_compressed(&self, artifact: &CompressedModel) -> u64 {
        let version = self.shared.registry.swap_compressed(artifact);
        self.shared.metrics.record_swap();
        version
    }

    /// Precision of the currently served model (`"f32"` or `"int8"`).
    pub fn precision(&self) -> &'static str {
        self.shared.registry.current().model.precision()
    }

    /// Pins the current version as the rollback target for
    /// [`InferenceServer::rollback`], returning its version number.
    pub fn pin_current(&self) -> u64 {
        self.shared.registry.pin_current()
    }

    /// Version number of the pinned rollback target, if any.
    pub fn pinned_version(&self) -> Option<u64> {
        self.shared.registry.pinned_version()
    }

    /// Atomically restores the pinned version (see
    /// [`crate::ModelRegistry::rollback_to_pin`]); in-flight requests
    /// complete on the version they were admitted under. Returns the
    /// restored version number, or `None` when nothing is pinned.
    pub fn rollback(&self) -> Option<u64> {
        let version = self.shared.registry.rollback_to_pin()?;
        self.shared.metrics.record_revert();
        Some(version)
    }

    /// Current model version.
    pub fn version(&self) -> u64 {
        self.shared.registry.version()
    }

    /// Number of completed hot swaps.
    pub fn swap_count(&self) -> u64 {
        self.shared.registry.swap_count()
    }

    /// Number of completed rollbacks to a pinned version.
    pub fn revert_count(&self) -> u64 {
        self.shared.registry.revert_count()
    }

    /// Metrics snapshot; throughput is measured since server start on the
    /// observability clock.
    pub fn metrics(&self) -> MetricsSnapshot {
        let elapsed =
            Duration::from_nanos(self.shared.metrics.now_ns().saturating_sub(self.started_ns));
        self.shared.metrics.snapshot(elapsed)
    }

    /// The observability session this server records into (the one passed
    /// via [`ServeConfig::obs`], or the private session created at start).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// Stops accepting work and joins all threads. Every [`ServeClient`]
    /// must be dropped first; in-flight requests are answered before the
    /// threads exit.
    pub fn shutdown(mut self) {
        self.jobs_tx = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{DeviceClass, NetworkClass};
    use mdl_nn::{Activation, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Big enough (~9.6M MACs) that a wearable on Wi-Fi offloads to the
    /// cloud: on-device would cost ~48ms against ~20ms of radio latency.
    fn cloud_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 4, Activation::Identity, &mut rng));
        net
    }

    fn cloud_profile() -> ClientProfile {
        ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi }
    }

    #[test]
    fn single_request_round_trip() {
        let server = InferenceServer::start(cloud_model(1), None, ServeConfig::default());
        let client = server.client();
        let rx = client.submit(&[0.5; 32], cloud_profile()).expect("server up");
        let resp = rx.recv().expect("answered");
        assert_eq!(resp.probs.len(), 4);
        assert!((resp.probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(resp.model_version, 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn offline_requests_run_local_and_skip_the_queue() {
        let server = InferenceServer::start(cloud_model(2), None, ServeConfig::default());
        let client = server.client();
        let profile =
            ClientProfile { device: DeviceClass::Flagship, network: NetworkClass::Offline };
        let resp = client.submit(&[0.1; 32], profile).unwrap().recv().unwrap();
        assert_eq!(resp.route, Route::Local);
        assert_eq!(resp.batch_size, 1);
        let snap = server.metrics();
        assert_eq!(snap.local, 1);
        assert_eq!(snap.batches, 0, "local requests never reach the worker pool");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn responses_match_direct_model_output() {
        let reference = cloud_model(3);
        let server = InferenceServer::start(cloud_model(3), None, ServeConfig::default());
        let client = server.client();
        let input: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        let resp = client.submit(&input, cloud_profile()).unwrap().recv().unwrap();
        let direct = reference.predict_proba(&Matrix::row_vector(&input));
        for (a, b) in resp.probs.iter().zip(direct.row(0)) {
            assert!((a - b).abs() < 1e-6, "served {a} vs direct {b}");
        }
        assert_eq!(
            resp.argmax,
            direct.row(0).iter().enumerate().fold(0, |m, (i, &v)| {
                if v > direct.row(0)[m] {
                    i
                } else {
                    m
                }
            })
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn hot_swap_changes_served_version() {
        let server = InferenceServer::start(cloud_model(4), None, ServeConfig::default());
        let client = server.client();
        let v1 = client.submit(&[0.2; 32], cloud_profile()).unwrap().recv().unwrap();
        assert_eq!(v1.model_version, 1);
        assert_eq!(server.swap_model(cloud_model(5)), 2);
        let v2 = client.submit(&[0.2; 32], cloud_profile()).unwrap().recv().unwrap();
        assert_eq!(v2.model_version, 2);
        assert_eq!(server.swap_count(), 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn shedding_is_class_ordered() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut fallback = Sequential::new();
        fallback.push(Dense::new(32, 4, Activation::Identity, &mut rng));
        // Standard depth 1 ⇒ BestEffort threshold 0 (sheds immediately)
        // while Interactive holds to depth 4: the same queue state sheds
        // one class and serves the other.
        let config = ServeConfig { shed_queue_depth: 1, ..Default::default() };
        let server = InferenceServer::start(cloud_model(7), Some(fallback), config);
        let client = server.client();

        let be = client
            .submit_classed(&[0.4; 32], cloud_profile(), SloClass::BestEffort)
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(be.route, Route::EarlyExit, "best-effort sheds at depth 0");
        assert_eq!(be.class, Some(SloClass::BestEffort));

        let it = client
            .submit_classed(&[0.4; 32], cloud_profile(), SloClass::Interactive)
            .unwrap()
            .recv()
            .unwrap();
        assert_eq!(it.route, Route::Cloud, "interactive rides out the same depth");
        assert_eq!(it.class, Some(SloClass::Interactive));

        let snap = server.obs().snapshot();
        assert_eq!(snap.counter("serve.class.best_effort.shed"), Some(1));
        assert_eq!(snap.counter("serve.class.interactive.completed"), Some(1));
        assert_eq!(snap.counter("serve.class.interactive.shed"), None, "lazy + never shed");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn shedding_uses_fallback_when_queue_is_deep() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut fallback = Sequential::new();
        fallback.push(Dense::new(32, 4, Activation::Identity, &mut rng));
        // shed_queue_depth 0: every cloud-bound request sheds
        let config = ServeConfig { shed_queue_depth: 0, ..Default::default() };
        let server = InferenceServer::start(cloud_model(6), Some(fallback), config);
        let client = server.client();
        let resp = client.submit(&[0.3; 32], cloud_profile()).unwrap().recv().unwrap();
        assert_eq!(resp.route, Route::EarlyExit);
        let snap = server.metrics();
        assert_eq!(snap.shed, 1);
        assert!(snap.shed_rate() > 0.99);
        drop(client);
        server.shutdown();
    }
}
