//! SLO service classes for admission control.
//!
//! Every request carries a [`SloClass`]; the serving tier orders both
//! queueing and shedding strictly by class. `Interactive` traffic is the
//! last to shed and the first to dispatch, `BestEffort` the reverse —
//! replacing the blanket queue-depth threshold that shed whichever
//! request happened to arrive when the queue was deep, regardless of how
//! much the caller cared about the answer.

/// Service class of one request, in strict priority order.
///
/// The derived [`Ord`] is the priority order: `Interactive` sorts first.
/// Within a class, requests keep FIFO order — class never reorders the
/// work of equals, it only decides who waits (and who sheds) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloClass {
    /// User-facing, latency-sensitive: served first, shed last.
    Interactive,
    /// Default traffic with ordinary latency expectations.
    Standard,
    /// Background/batch work: the first to shed under pressure.
    BestEffort,
}

impl SloClass {
    /// Every class, in priority order (highest first).
    pub const ALL: [SloClass; 3] =
        [SloClass::Interactive, SloClass::Standard, SloClass::BestEffort];

    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Priority rank: 0 for `Interactive` through 2 for `BestEffort`.
    pub fn rank(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// Inverse of [`SloClass::rank`]; `None` for out-of-range values.
    pub fn from_rank(rank: usize) -> Option<Self> {
        Self::ALL.get(rank).copied()
    }

    /// Snake-case label used in metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::BestEffort => "best_effort",
        }
    }

    /// `serve.class.<label>.completed` — responses served for this class.
    pub fn completed_metric(self) -> &'static str {
        match self {
            SloClass::Interactive => "serve.class.interactive.completed",
            SloClass::Standard => "serve.class.standard.completed",
            SloClass::BestEffort => "serve.class.best_effort.completed",
        }
    }

    /// `serve.class.<label>.shed` — requests shed for this class.
    pub fn shed_metric(self) -> &'static str {
        match self {
            SloClass::Interactive => "serve.class.interactive.shed",
            SloClass::Standard => "serve.class.standard.shed",
            SloClass::BestEffort => "serve.class.best_effort.shed",
        }
    }

    /// `serve.class.<label>.latency_us` — served-only latency histogram.
    pub fn latency_metric(self) -> &'static str {
        match self {
            SloClass::Interactive => "serve.class.interactive.latency_us",
            SloClass::Standard => "serve.class.standard.latency_us",
            SloClass::BestEffort => "serve.class.best_effort.latency_us",
        }
    }

    /// Multiplier applied to `ServeConfig::shed_queue_depth` to get this
    /// class's shed threshold in the threaded server: `BestEffort` sheds
    /// at a quarter of the configured depth, `Standard` at the depth
    /// itself, and `Interactive` holds on to four times that — so under
    /// rising load the classes shed strictly in reverse priority order.
    pub fn shed_depth(self, shed_queue_depth: usize) -> usize {
        match self {
            SloClass::Interactive => shed_queue_depth.saturating_mul(4),
            SloClass::Standard => shed_queue_depth,
            SloClass::BestEffort => shed_queue_depth / 4,
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_is_the_derived_ord() {
        assert!(SloClass::Interactive < SloClass::Standard);
        assert!(SloClass::Standard < SloClass::BestEffort);
        let mut shuffled = [SloClass::BestEffort, SloClass::Interactive, SloClass::Standard];
        shuffled.sort();
        assert_eq!(shuffled, SloClass::ALL);
    }

    #[test]
    fn rank_round_trips() {
        for class in SloClass::ALL {
            assert_eq!(SloClass::from_rank(class.rank()), Some(class));
        }
        assert_eq!(SloClass::from_rank(3), None);
    }

    #[test]
    fn shed_depths_are_strictly_class_ordered() {
        let depth = 64;
        assert!(
            SloClass::BestEffort.shed_depth(depth) < SloClass::Standard.shed_depth(depth)
                && SloClass::Standard.shed_depth(depth) < SloClass::Interactive.shed_depth(depth)
        );
        assert_eq!(SloClass::BestEffort.shed_depth(depth), 16);
        assert_eq!(SloClass::Standard.shed_depth(depth), 64);
        assert_eq!(SloClass::Interactive.shed_depth(depth), 256);
    }
}
