//! Streaming FedAvg aggregation in O(shards × dim) memory.
//!
//! Two aggregators with different contracts:
//!
//! * [`BufferedAggregator`] replicates the legacy
//!   `weighted_average` float arithmetic *operation for operation* — the
//!   adapter that rewires the classic 10-client loop through the engine
//!   uses it to stay bit-identical with history.
//! * [`ShardedAggregator`] accumulates updates into fixed-point `i128`
//!   shard accumulators. Integer addition is associative and commutative,
//!   so the final mean is **bit-identical for any shard count, any
//!   accumulation order, and any thread count** — the property tests pin
//!   1 shard vs 8 shards to the bit. This is the population-scale path:
//!   updates stream in and are dropped immediately; nothing is ever
//!   buffered per client.

/// One client's locally-trained result, ready for upload.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalUpdate {
    /// Flat parameter vector after local training.
    pub values: Vec<f32>,
    /// FedAvg weighting term `n_k`.
    pub num_examples: u64,
    /// Bytes this update occupies on the wire.
    pub wire_bytes: u64,
}

impl LocalUpdate {
    /// A dense fp32 update: 4 bytes per value plus an 8-byte header, the
    /// same wire format as the legacy `DenseUpdate`.
    pub fn dense(values: Vec<f32>, num_examples: u64) -> Self {
        let wire_bytes = 8 + 4 * values.len() as u64;
        Self { values, num_examples, wire_bytes }
    }
}

/// Buffers `(values, n_k)` pairs and averages them with exactly the float
/// arithmetic of the legacy `weighted_average`: `w = (n_k / Σn) as f32`,
/// accumulated per update in insertion order.
#[derive(Debug, Default)]
pub struct BufferedAggregator {
    updates: Vec<(Vec<f32>, u64)>,
}

impl BufferedAggregator {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one update.
    pub fn push(&mut self, values: Vec<f32>, num_examples: u64) {
        self.updates.push((values, num_examples));
    }

    /// Updates buffered so far.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The weighted mean, or `None` on an empty buffer, mismatched
    /// dimensions, or zero total weight — the exact legacy contract.
    pub fn mean(&self) -> Option<Vec<f32>> {
        let (first, _) = self.updates.first()?;
        let dim = first.len();
        if self.updates.iter().any(|(v, _)| v.len() != dim) {
            return None;
        }
        let total: f64 = self.updates.iter().map(|&(_, n)| n as f64).sum();
        if total == 0.0 {
            return None;
        }
        let mut out = vec![0.0f32; dim];
        for (values, n) in &self.updates {
            let w = (*n as f64 / total) as f32;
            for (o, &v) in out.iter_mut().zip(values.iter()) {
                *o += w * v;
            }
        }
        Some(out)
    }
}

/// Fixed-point scale: 24 fractional bits. Parameters live in roughly
/// `[-10^3, 10^3]`, so a scaled value fits in ~2^34; weighted by
/// `n_k ≤ 2^32` and summed over 2^20 clients the accumulator stays under
/// 2^86 — far inside `i128`.
const SCALE: f64 = (1u64 << 24) as f64;

#[derive(Debug, Clone)]
struct Shard {
    acc: Vec<i128>,
    weight: u128,
    updates: u64,
}

/// Order- and shard-count-invariant streaming aggregator.
#[derive(Debug, Clone)]
pub struct ShardedAggregator {
    dim: usize,
    shards: Vec<Shard>,
}

impl ShardedAggregator {
    /// `shards` independent accumulators over `dim`-dimensional updates
    /// (`shards` is clamped to at least 1).
    pub fn new(dim: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self { dim, shards: vec![Shard { acc: vec![0; dim], weight: 0, updates: 0 }; shards] }
    }

    /// Number of shard accumulators.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Updates accumulated across all shards.
    pub fn updates(&self) -> u64 {
        self.shards.iter().map(|s| s.updates).sum()
    }

    /// Streams one update into `shard` (wrapped modulo the shard count).
    /// Returns `false` — accumulating nothing — on a dimension mismatch.
    pub fn accumulate(&mut self, shard: usize, values: &[f32], num_examples: u64) -> bool {
        if values.len() != self.dim {
            return false;
        }
        let slot = shard % self.shards.len();
        let shard = &mut self.shards[slot];
        let n = num_examples as i128;
        for (a, &v) in shard.acc.iter_mut().zip(values.iter()) {
            *a += n * (v as f64 * SCALE).round() as i128;
        }
        shard.weight += num_examples as u128;
        shard.updates += 1;
        true
    }

    /// The weighted mean over everything streamed in, or `None` when the
    /// total weight is zero. Shard totals are reduced with integer adds,
    /// so the result is independent of how updates were split across
    /// shards and of the order they arrived in.
    pub fn mean(&self) -> Option<Vec<f32>> {
        let total: u128 = self.shards.iter().map(|s| s.weight).sum();
        if total == 0 {
            return None;
        }
        let mut out = vec![0.0f32; self.dim];
        for (i, o) in out.iter_mut().enumerate() {
            let sum: i128 = self.shards.iter().map(|s| s.acc[i]).sum();
            *o = (sum as f64 / total as f64 / SCALE) as f32;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_mean_matches_hand_arithmetic() {
        let mut agg = BufferedAggregator::new();
        agg.push(vec![1.0, 2.0], 1);
        agg.push(vec![3.0, 4.0], 3);
        let m = agg.mean().unwrap();
        // w1 = 0.25, w2 = 0.75
        assert!((m[0] - 2.5).abs() < 1e-6 && (m[1] - 3.5).abs() < 1e-6);
        assert!(BufferedAggregator::new().mean().is_none());
        let mut zero = BufferedAggregator::new();
        zero.push(vec![1.0], 0);
        assert!(zero.mean().is_none(), "zero total weight");
        let mut bad = BufferedAggregator::new();
        bad.push(vec![1.0], 1);
        bad.push(vec![1.0, 2.0], 1);
        assert!(bad.mean().is_none(), "dimension mismatch");
    }

    #[test]
    fn sharded_mean_is_shard_count_invariant_to_the_bit() {
        let updates: Vec<(Vec<f32>, u64)> = (0..257u64)
            .map(|i| {
                let v: Vec<f32> = (0..33).map(|j| ((i * 31 + j) % 97) as f32 / 7.0 - 5.0).collect();
                (v, 1 + i % 13)
            })
            .collect();
        let run = |shards: usize| {
            let mut agg = ShardedAggregator::new(33, shards);
            for (i, (v, n)) in updates.iter().enumerate() {
                assert!(agg.accumulate(i, v, *n));
            }
            agg.mean().unwrap()
        };
        let one = run(1);
        for shards in [2, 3, 8, 64] {
            assert_eq!(one, run(shards), "shards={shards}");
        }
        // order invariance: reversed arrival, same bits
        let mut rev = ShardedAggregator::new(33, 8);
        for (i, (v, n)) in updates.iter().enumerate().rev() {
            rev.accumulate(i, v, *n);
        }
        assert_eq!(one, rev.mean().unwrap());
        assert_eq!(rev.updates(), 257);
    }

    #[test]
    fn sharded_mean_tracks_true_weighted_mean() {
        let mut agg = ShardedAggregator::new(2, 4);
        agg.accumulate(0, &[1.0, -2.0], 1);
        agg.accumulate(1, &[3.0, 6.0], 3);
        let m = agg.mean().unwrap();
        assert!((m[0] - 2.5).abs() < 1e-5, "{m:?}");
        assert!((m[1] - 4.0).abs() < 1e-5, "{m:?}");
        assert!(ShardedAggregator::new(2, 4).mean().is_none());
        let mut bad = ShardedAggregator::new(2, 1);
        assert!(!bad.accumulate(0, &[1.0], 5), "dimension mismatch rejected");
        assert!(bad.mean().is_none());
    }
}
