//! Per-round cohort sampling over a client population.
//!
//! The server does not shuffle 100k ids through a shared RNG each round —
//! it ranks every eligible client by a stateless keyed hash of
//! `(seed, round, id)` and takes the lowest ranks. The sample is then
//!
//! * **deterministic** per `(seed, round)`,
//! * **duplicate-free** (ids are ranked, not drawn with replacement),
//! * **order-independent**: permuting the eligible list cannot change who
//!   is picked or the order they are visited in, and
//! * **exactly sized**: `round(eligible × fraction)` clamped to
//!   `[min_size, max_size]` and the eligible count.

use crate::seed::keyed_hash;
use serde::{Deserialize, Serialize};

/// Domain separator so cohort ranks never alias fault or training draws.
const COHORT_DOMAIN: u64 = 0xC0_0847_0000_0000;

/// How many eligible clients to select each round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSpec {
    /// Fraction `C` of the eligible set to select.
    pub fraction: f64,
    /// Never select fewer than this many (when enough are eligible).
    pub min_size: usize,
    /// Never select more than this many.
    pub max_size: usize,
}

impl CohortSpec {
    /// Selects `fraction` of the eligible set with sane bounds for
    /// population-scale rounds.
    pub fn fraction(fraction: f64) -> Self {
        Self { fraction, min_size: 1, max_size: usize::MAX }
    }

    /// The cohort size for `eligible` eligible clients.
    pub fn target(&self, eligible: usize) -> usize {
        if eligible == 0 {
            return 0;
        }
        let want = (eligible as f64 * self.fraction.clamp(0.0, 1.0)).round() as usize;
        want.clamp(self.min_size.min(eligible), self.max_size.max(1)).min(eligible)
    }
}

/// Samples one round's cohort from the eligible ids.
///
/// Returns the selected ids ordered by their rank hash (a deterministic
/// shuffle); the result depends only on the *set* of eligible ids, never
/// on the order the caller discovered them in.
pub fn sample_cohort(eligible: &[u64], spec: &CohortSpec, seed: u64, round: usize) -> Vec<u64> {
    let target = spec.target(eligible.len());
    if target == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<(u64, u64)> = eligible
        .iter()
        .map(|&id| (keyed_hash(seed ^ COHORT_DOMAIN, round as u64, id), id))
        .collect();
    if target < ranked.len() {
        ranked.select_nth_unstable(target - 1);
        ranked.truncate(target);
    }
    ranked.sort_unstable();
    ranked.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn cohort_is_deterministic_and_order_independent() {
        let spec = CohortSpec::fraction(0.1);
        let forward = sample_cohort(&ids(5000), &spec, 42, 3);
        let mut reversed: Vec<u64> = ids(5000);
        reversed.reverse();
        assert_eq!(forward, sample_cohort(&reversed, &spec, 42, 3));
        assert_eq!(forward, sample_cohort(&ids(5000), &spec, 42, 3));
        assert_ne!(forward, sample_cohort(&ids(5000), &spec, 42, 4), "rounds decorrelate");
        assert_ne!(forward, sample_cohort(&ids(5000), &spec, 43, 3), "seeds decorrelate");
    }

    #[test]
    fn cohort_has_no_duplicates_and_respects_bounds() {
        let spec = CohortSpec { fraction: 0.25, min_size: 8, max_size: 64 };
        for n in [0u64, 1, 10, 100, 1000] {
            let cohort = sample_cohort(&ids(n), &spec, 7, 1);
            let mut unique = cohort.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), cohort.len(), "duplicates at n={n}");
            assert_eq!(cohort.len(), spec.target(n as usize));
            assert!(cohort.len() <= 64);
            if n >= 8 {
                assert!(cohort.len() >= 8, "min_size at n={n}");
            }
        }
    }

    #[test]
    fn target_sizes_clamp_sanely() {
        assert_eq!(CohortSpec::fraction(0.5).target(0), 0);
        assert_eq!(CohortSpec::fraction(0.0).target(100), 1, "min_size floor");
        assert_eq!(CohortSpec::fraction(1.0).target(100), 100);
        assert_eq!(CohortSpec { fraction: 1.0, min_size: 1, max_size: 10 }.target(100), 10);
        assert_eq!(CohortSpec { fraction: 0.01, min_size: 5, max_size: 10 }.target(100), 5);
        assert_eq!(CohortSpec { fraction: 0.5, min_size: 10, max_size: 20 }.target(4), 4);
    }
}
