//! The two round engines.
//!
//! [`run_legacy_loop`] is the classic fixed-cohort FedAvg driver: the
//! exact control flow (and RNG consumption) of the original
//! `run_federated_over`, factored out so the federated crate's public
//! entry point becomes a thin adapter. Byte-for-byte equivalence with the
//! pre-engine implementation is pinned by the integration tests.
//!
//! [`run_population`] is the population-scale engine: a discrete-event
//! loop over virtual time in which each round samples a cohort from a
//! lazily-advanced [`Population`], pushes traffic through per-client
//! `mdl-net` links keyed by stable client id, charges local compute
//! against the round deadline, trains only the clients whose uploads
//! actually arrived, and streams their updates into a shard-count-
//! invariant fixed-point aggregator. Every draw is a stateless function
//! of `(seed, round, client id)`, so a 100k-client round is bit-identical
//! across runs, thread counts and cohort compositions.

use crate::aggregate::{BufferedAggregator, LocalUpdate, ShardedAggregator};
use crate::cohort::{sample_cohort, CohortSpec};
use crate::event::EventQueue;
use crate::population::Population;
use crate::seed::keyed_hash;
use mdl_mobile::NetworkProfile;
use mdl_net::{
    Direction, Fabric, FaultPlan, Link, LinkConfig, NetError, RetryPolicy, TransportMetrics,
};
use mdl_obs::{Counter, Obs, Span};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

// Domain separators: link jitter, local-training seeds and edge
// assignment must never alias each other or the fault/cohort streams.
const LINK_DOMAIN: u64 = 0x1111_C000_0000_0000;
const TRAIN_DOMAIN: u64 = 0x7124_1000_0000_0000;
const EDGE_DOMAIN: u64 = 0xED6E_0000_0000_0000;
const EDGE_LINK_DOMAIN: u64 = 0xED6E_1111_0000_0000;

/// Hyper-parameters of the legacy fixed-cohort loop that the engine needs
/// to drive a round; everything model-specific stays behind the closures.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyConfig {
    /// Maximum federation rounds.
    pub rounds: usize,
    /// Fraction `C` of eligible clients selected per round.
    pub client_fraction: f64,
    /// Probability a selected client fails mid-round and never reports.
    pub failure_prob: f64,
    /// Bytes of one global-parameter broadcast.
    pub param_bytes: u64,
}

/// Drives the classic FedAvg loop over a [`Fabric`], consuming `rng`
/// exactly as the original monolithic implementation did: eligibility
/// sample, shuffle, per-selected `(seed, failure)` draws — in that order,
/// nothing more. Training runs on one scoped thread per selected client
/// with pre-drawn seeds, so thread scheduling cannot perturb results.
///
/// * `sample_eligible` returns the eligible client indices (consuming
///   `rng` however the availability model requires).
/// * `train` maps `(client, seed, global params)` to a [`LocalUpdate`];
///   it runs on a scoped thread and must not touch shared mutable state.
/// * `evaluate` is called after every quorum-successful round with
///   `(round, params, total_bytes, participants)`; returning `true`
///   stops the run early.
///
/// # Errors
///
/// Returns [`NetError::QuorumUnreachable`] after
/// `fabric.config().max_failed_rounds` consecutive quorum misses.
pub fn run_legacy_loop<S, T, E>(
    cfg: &LegacyConfig,
    initial_params: Vec<f32>,
    fabric: &mut Fabric,
    rng: &mut StdRng,
    mut sample_eligible: S,
    train: T,
    mut evaluate: E,
) -> Result<Vec<f32>, NetError>
where
    S: FnMut(&mut StdRng) -> Vec<usize>,
    T: Fn(usize, u64, &[f32]) -> LocalUpdate + Sync,
    E: FnMut(usize, &[f32], u64, usize) -> bool,
{
    let mut params = initial_params;
    let mut consecutive_quorum_misses = 0usize;

    let fed_obs = fabric.obs().cloned();
    let fed_counters = fed_obs.as_ref().map(|o| {
        let r = o.registry();
        (r.counter("fed.selected"), r.counter("fed.updates"), r.counter("fed.quorum_misses"))
    });

    for round in 1..=cfg.rounds {
        // declared before any `continue`, so the span closes after the
        // round's `end_round` (and clock advance) on every path
        let round_span = fed_obs.as_ref().map(|o| o.root_span("fed.round"));
        let _ = &round_span;
        fabric.begin_round();

        let mut eligible = sample_eligible(rng);
        if eligible.is_empty() {
            fabric.end_round();
            continue;
        }
        eligible.shuffle(rng);
        let m = (((eligible.len() as f64) * cfg.client_fraction).round() as usize)
            .clamp(1, eligible.len());
        let selected = &eligible[..m];

        // seeds and failure fates drawn in selection order before any
        // thread spawns — bit-determinism does not depend on scheduling
        let fates: Vec<(u64, bool)> = selected
            .iter()
            .map(|_| {
                let seed: u64 = rng.gen();
                let fails = cfg.failure_prob > 0.0 && rng.gen::<f64>() < cfg.failure_prob;
                (seed, fails)
            })
            .collect();
        let reached: Vec<bool> = selected
            .iter()
            .map(|&c| fabric.send_down(c, cfg.param_bytes).is_ok() && !fabric.client_dropped(c))
            .collect();
        let params_ref = &params;
        let train_ref = &train;
        let results: Vec<Option<LocalUpdate>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = selected
                .iter()
                .zip(fates.iter().zip(reached.iter()))
                .map(|(&c, (&(seed, fails), &reached))| {
                    scope.spawn(move |_| {
                        if fails || !reached {
                            return None;
                        }
                        Some(train_ref(c, seed, params_ref))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
        })
        .expect("client scope");

        let mut agg = BufferedAggregator::new();
        for (&c, update) in selected.iter().zip(results) {
            let Some(update) = update else { continue };
            if fabric.send_up(c, update.wire_bytes).is_ok() {
                agg.push(update.values, update.num_examples);
            }
        }
        let completed = agg.len();
        if let Some((selected_c, updates_c, _)) = &fed_counters {
            selected_c.add(selected.len() as u64);
            updates_c.add(completed as u64);
        }

        let needed = fabric.quorum_min(selected.len());
        if completed < needed {
            consecutive_quorum_misses += 1;
            if let Some((_, _, misses)) = &fed_counters {
                misses.inc();
            }
            if consecutive_quorum_misses >= fabric.config().max_failed_rounds {
                return Err(NetError::QuorumUnreachable { round, needed, got: completed });
            }
            fabric.end_round();
            continue;
        }
        consecutive_quorum_misses = 0;
        if let Some(avg) = agg.mean() {
            params = avg;
        }
        fabric.end_round();

        if evaluate(round, &params, fabric.metrics().ledger().total_bytes(), completed) {
            break;
        }
    }
    Ok(params)
}

/// How cohort traffic reaches the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every client talks to the server directly.
    Flat,
    /// Clients upload to one of `edges` edge aggregators (assigned by
    /// stable id hash); each edge pre-aggregates its members and forwards
    /// a single model-sized payload over the `backhaul` link. An edge
    /// whose backhaul round fails loses all its members' updates.
    TwoLevel {
        /// Number of edge aggregators.
        edges: usize,
        /// The edge↔server link profile.
        backhaul: NetworkProfile,
    },
}

/// Parameters of a population-scale simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Federation rounds to run.
    pub rounds: usize,
    /// Virtual seconds between round starts (a round that overruns this
    /// delays the next round's start — rounds never overlap).
    pub round_interval_s: f64,
    /// Per-round deadline: transfers and local compute beyond this are
    /// cut off.
    pub deadline_s: f64,
    /// Cohort sampling policy.
    pub cohort: CohortSpec,
    /// Fault plan, applied per stable client id.
    pub faults: FaultPlan,
    /// Retry policy for every link.
    pub retry: RetryPolicy,
    /// Base packet-loss probability of every link.
    pub loss_prob: f64,
    /// Jitter fraction of every link.
    pub jitter_frac: f64,
    /// Fraction of the cohort that must deliver for the round to count.
    pub quorum_fraction: f64,
    /// Consecutive quorum misses tolerated before giving up.
    pub max_failed_rounds: usize,
    /// Shard accumulators in the streaming aggregator (memory is
    /// O(shards × dim); the mean is bit-identical for any value).
    pub shards: usize,
    /// Clients trained concurrently per wave (wall-clock knob only;
    /// results are bit-identical for any value).
    pub wave: usize,
    /// Local-training cost model: multiply–accumulates per example per
    /// round, divided by the device's `macs_per_sec` and charged against
    /// the round deadline.
    pub macs_per_example: f64,
    /// Flat or two-level edge aggregation.
    pub topology: Topology,
    /// Master seed for cohort, fault, link and training draws.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            round_interval_s: 60.0,
            deadline_s: 30.0,
            cohort: CohortSpec::fraction(0.1),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            loss_prob: 0.0,
            jitter_frac: 0.0,
            quorum_fraction: 0.5,
            max_failed_rounds: 5,
            shards: 4,
            wave: 8,
            macs_per_example: 1.0e6,
            topology: Topology::Flat,
            seed: 0,
        }
    }
}

/// Failure modes of a population run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Too many consecutive rounds failed to deliver a quorum.
    QuorumUnreachable {
        /// Round that exhausted the tolerance.
        round: usize,
        /// Updates the quorum required.
        needed: usize,
        /// Updates that actually arrived.
        got: usize,
    },
    /// The population has no clients.
    EmptyPopulation,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QuorumUnreachable { round, needed, got } => {
                write!(f, "quorum unreachable at round {round}: needed {needed}, got {got}")
            }
            Self::EmptyPopulation => write!(f, "population has no clients"),
        }
    }
}

impl std::error::Error for SimError {}

/// The model-specific half of a population simulation: the engine knows
/// *when* and *whether* a client trains, the trainer knows *what* that
/// means. Runs on scoped worker threads, so it must be `Sync` and must
/// derive everything from `(client, seed, global)`.
pub trait ClientTrainer: Sync {
    /// Local dataset size of `client` — the FedAvg weight `n_k`, also
    /// used to price the client's compute time against the deadline.
    fn num_examples(&self, client: u64) -> u64;
    /// Runs local training and returns the updated parameter vector.
    fn train(&self, client: u64, seed: u64, global: &[f32]) -> Vec<f32>;
}

impl<N, F> ClientTrainer for (N, F)
where
    N: Fn(u64) -> u64 + Sync,
    F: Fn(u64, u64, &[f32]) -> Vec<f32> + Sync,
{
    fn num_examples(&self, client: u64) -> u64 {
        (self.0)(client)
    }
    fn train(&self, client: u64, seed: u64, global: &[f32]) -> Vec<f32> {
        (self.1)(client, seed, global)
    }
}

/// One round of a population run, as observed by the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Round index (1-based).
    pub round: usize,
    /// Clients eligible at round start.
    pub eligible: usize,
    /// Clients selected into the cohort.
    pub cohort: usize,
    /// Updates that reached the server.
    pub delivered: usize,
    /// Whether the quorum was met (the global model advanced).
    pub quorum_met: bool,
    /// Simulated duration of the round (slowest participant, capped by
    /// the deadline).
    pub round_s: f64,
}

/// Result of a population run.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationReport {
    /// Per-round outcomes in order.
    pub rounds: Vec<RoundOutcome>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Transport totals across every link the run touched.
    pub transport: TransportMetrics,
    /// Final virtual time in seconds.
    pub sim_clock_s: f64,
    /// Discrete events processed.
    pub events: u64,
}

#[derive(Debug)]
enum Event {
    RoundStart(usize),
    Arrival,
    RoundEnd(usize),
}

struct SimCounters {
    events: Counter,
    arrivals: Counter,
    eligible: Counter,
    selected: Counter,
    updates: Counter,
    quorum_misses: Counter,
    bytes_up: Counter,
    bytes_down: Counter,
    wasted_bytes: Counter,
}

impl SimCounters {
    fn new(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            events: r.counter("sim.events"),
            arrivals: r.counter("sim.arrivals"),
            eligible: r.counter("fed.eligible"),
            selected: r.counter("fed.selected"),
            updates: r.counter("fed.updates"),
            quorum_misses: r.counter("fed.quorum_misses"),
            bytes_up: r.counter("sim.bytes_up"),
            bytes_down: r.counter("sim.bytes_down"),
            wasted_bytes: r.counter("sim.wasted_bytes"),
        }
    }
}

fn quorum_min(fraction: f64, selected: usize) -> usize {
    if fraction <= 0.0 || selected == 0 {
        return 0;
    }
    ((selected as f64 * fraction).ceil() as usize).clamp(1, selected)
}

fn ns(secs: f64) -> u64 {
    (secs.max(0.0) * 1e9).round() as u64
}

/// What one round leaves pending until its `RoundEnd` event fires.
struct PendingRound {
    start_ns: u64,
    eligible: usize,
    cohort: usize,
    delivered: usize,
    agg: ShardedAggregator,
    round_transport: TransportMetrics,
}

/// Runs a population-scale federated simulation.
///
/// Per round: advance the population to the round's virtual start time,
/// gate eligibility, sample the cohort, simulate each selected client's
/// download → local compute → upload over its own faulty link, train the
/// survivors wave-parallel (seeds pre-drawn from `(seed, round, id)`),
/// and stream their updates into the sharded aggregator. Arrivals and
/// round boundaries are discrete events on a virtual-time queue that
/// drives `obs`'s sim clock.
///
/// # Errors
///
/// [`SimError::QuorumUnreachable`] after `max_failed_rounds` consecutive
/// quorum misses; [`SimError::EmptyPopulation`] for a zero-client
/// population.
pub fn run_population<T: ClientTrainer>(
    cfg: &SimConfig,
    population: &mut Population,
    initial_params: Vec<f32>,
    trainer: &T,
    obs: Option<&Obs>,
) -> Result<PopulationReport, SimError> {
    if population.is_empty() {
        return Err(SimError::EmptyPopulation);
    }
    let dim = initial_params.len();
    let param_bytes = 4 * dim as u64 + 8;
    let counters = obs.map(SimCounters::new);
    let run_span = obs.map(|o| o.root_span("sim.run"));

    let mut params = initial_params;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut transport = TransportMetrics::new();
    let mut consecutive_misses = 0usize;

    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.push(0, Event::RoundStart(1));
    let mut clock_ns = 0u64;
    let mut pending: Option<PendingRound> = None;
    let mut round_span: Option<Span> = None;

    while let Some((at, event)) = queue.pop() {
        if let Some(o) = obs {
            o.clock().advance_ns(at - clock_ns);
        }
        clock_ns = at;
        if let Some(c) = &counters {
            c.events.inc();
        }
        match event {
            Event::RoundStart(round) => {
                round_span = run_span.as_ref().map(|s| s.child("fed.round"));

                let eligible = population.eligible_at(at);
                let cohort = sample_cohort(&eligible, &cfg.cohort, cfg.seed, round);
                if let Some(c) = &counters {
                    c.eligible.add(eligible.len() as u64);
                    c.selected.add(cohort.len() as u64);
                }

                // simulate transport + compute for every cohort member
                // over its own keyed link; training is deferred until we
                // know whose upload actually landed
                let mut round_transport = TransportMetrics::new();
                let mut slowest_s = 0.0f64;
                let mut delivered: Vec<(u64, f64)> = Vec::new();
                for &id in &cohort {
                    let class = population.class_of(id);
                    let fate = cfg.faults.fate_keyed(cfg.seed, round, id);
                    let link_cfg = LinkConfig {
                        profile: class.network.clone(),
                        loss_prob: cfg.loss_prob,
                        jitter_frac: cfg.jitter_frac,
                    };
                    let mut link =
                        Link::new(link_cfg, keyed_hash(cfg.seed ^ LINK_DOMAIN, round as u64, id));
                    link.begin_round(fate, cfg.deadline_s);
                    let macs_per_sec = class.device.macs_per_sec;
                    let ok = link.send(param_bytes, Direction::Down, &cfg.retry).is_ok()
                        && link.charge_time(if macs_per_sec > 0.0 {
                            cfg.macs_per_example * trainer.num_examples(id) as f64 / macs_per_sec
                        } else {
                            0.0
                        })
                        && link.send(param_bytes, Direction::Up, &cfg.retry).is_ok();
                    round_transport.merge(link.metrics());
                    slowest_s = slowest_s.max(link.round_elapsed_s());
                    if ok {
                        delivered.push((id, link.round_elapsed_s()));
                    }
                }

                // two-level: members upload to their edge; each edge
                // forwards one pre-aggregated payload over the backhaul
                if let Topology::TwoLevel { edges, backhaul } = &cfg.topology {
                    let edges = (*edges).max(1);
                    let mut grouped: Vec<Vec<(u64, f64)>> = vec![Vec::new(); edges];
                    for (id, elapsed) in delivered.drain(..) {
                        let e = (keyed_hash(cfg.seed ^ EDGE_DOMAIN, 0, id) % edges as u64) as usize;
                        grouped[e].push((id, elapsed));
                    }
                    for (e, members) in grouped.into_iter().enumerate() {
                        if members.is_empty() {
                            continue;
                        }
                        let ready_s = members.iter().fold(0.0f64, |acc, &(_, t)| acc.max(t));
                        let link_cfg = LinkConfig {
                            profile: backhaul.clone(),
                            loss_prob: cfg.loss_prob,
                            jitter_frac: cfg.jitter_frac,
                        };
                        let mut link = Link::new(
                            link_cfg,
                            keyed_hash(cfg.seed ^ EDGE_LINK_DOMAIN, round as u64, e as u64),
                        );
                        link.begin_round(mdl_net::RoundFate::healthy(), cfg.deadline_s);
                        let ok = link.send(param_bytes, Direction::Down, &cfg.retry).is_ok()
                            && link.charge_time(ready_s)
                            && link.send(param_bytes, Direction::Up, &cfg.retry).is_ok();
                        round_transport.merge(link.metrics());
                        slowest_s = slowest_s.max(link.round_elapsed_s());
                        if ok {
                            let edge_done = link.round_elapsed_s();
                            delivered.extend(members.into_iter().map(|(id, _)| (id, edge_done)));
                        }
                    }
                    delivered.sort_unstable_by_key(|&(id, _)| id);
                }

                // wave-parallel local training for the survivors only;
                // seeds pre-drawn, accumulation order fixed by cohort
                // order — and the fixed-point aggregator is order- and
                // shard-invariant anyway
                let mut agg = ShardedAggregator::new(dim, cfg.shards);
                let wave = cfg.wave.max(1);
                let params_ref = &params;
                for (w, chunk) in delivered.chunks(wave).enumerate() {
                    let results: Vec<Vec<f32>> = crossbeam::thread::scope(|scope| {
                        let handles: Vec<_> = chunk
                            .iter()
                            .map(|&(id, _)| {
                                let seed = keyed_hash(cfg.seed ^ TRAIN_DOMAIN, round as u64, id);
                                scope.spawn(move |_| trainer.train(id, seed, params_ref))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("client thread panicked"))
                            .collect()
                    })
                    .expect("client scope");
                    for (i, (values, &(id, _))) in results.iter().zip(chunk.iter()).enumerate() {
                        agg.accumulate(w * wave + i, values, trainer.num_examples(id));
                    }
                }
                if let Some(c) = &counters {
                    c.updates.add(delivered.len() as u64);
                }

                for &(_, elapsed_s) in &delivered {
                    queue.push(at + ns(elapsed_s), Event::Arrival);
                }
                queue.push(at + ns(slowest_s), Event::RoundEnd(round));
                pending = Some(PendingRound {
                    start_ns: at,
                    eligible: eligible.len(),
                    cohort: cohort.len(),
                    delivered: delivered.len(),
                    agg,
                    round_transport,
                });
            }
            Event::Arrival => {
                if let Some(c) = &counters {
                    c.arrivals.inc();
                }
            }
            Event::RoundEnd(round) => {
                let p = pending.take().expect("RoundEnd without a pending round");
                transport.merge(&p.round_transport);
                transport.rounds += 1;
                if let Some(c) = &counters {
                    c.bytes_up.add(p.round_transport.bytes_up);
                    c.bytes_down.add(p.round_transport.bytes_down);
                    c.wasted_bytes.add(p.round_transport.wasted_bytes);
                }
                let needed = quorum_min(cfg.quorum_fraction, p.cohort);
                let quorum_met = p.delivered >= needed;
                if quorum_met {
                    consecutive_misses = 0;
                    if let Some(mean) = p.agg.mean() {
                        params = mean;
                    }
                } else {
                    consecutive_misses += 1;
                    if let Some(c) = &counters {
                        c.quorum_misses.inc();
                    }
                }
                rounds.push(RoundOutcome {
                    round,
                    eligible: p.eligible,
                    cohort: p.cohort,
                    delivered: p.delivered,
                    quorum_met,
                    round_s: (at - p.start_ns) as f64 / 1e9,
                });
                if let Some(s) = round_span.take() {
                    s.exit();
                }
                if !quorum_met && consecutive_misses >= cfg.max_failed_rounds.max(1) {
                    return Err(SimError::QuorumUnreachable { round, needed, got: p.delivered });
                }
                if round < cfg.rounds {
                    let next = (p.start_ns + ns(cfg.round_interval_s)).max(at);
                    queue.push(next, Event::RoundStart(round + 1));
                }
            }
        }
    }

    let sim_clock_s = clock_ns as f64 / 1e9;
    transport.sim_clock_s = sim_clock_s;
    if let Some(s) = run_span {
        s.exit();
    }
    Ok(PopulationReport {
        rounds,
        final_params: params,
        transport,
        sim_clock_s,
        events: queue.events_processed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;

    /// A trivial deterministic "trainer": nudges every parameter by a
    /// client- and seed-dependent amount.
    fn toy_trainer() -> impl ClientTrainer {
        (
            |client: u64| 10 + client % 5,
            |client: u64, seed: u64, global: &[f32]| {
                global
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        g + ((client as f32 + i as f32).sin() + (seed % 97) as f32 / 970.0) * 0.01
                    })
                    .collect()
            },
        )
    }

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            rounds: 3,
            cohort: CohortSpec { fraction: 0.2, min_size: 4, max_size: 64 },
            faults: FaultPlan::lossy_cohort(),
            loss_prob: 0.05,
            jitter_frac: 0.1,
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn population_run_is_bit_reproducible() {
        let run = || {
            let mut pop = Population::new(PopulationSpec::mobile_mix(500, 77));
            let obs = Obs::sim();
            let report =
                run_population(&small_cfg(5), &mut pop, vec![0.5; 16], &toy_trainer(), Some(&obs))
                    .expect("quorum reachable");
            (report, obs.snapshot().to_json())
        };
        let (a, snap_a) = run();
        let (b, snap_b) = run();
        assert_eq!(a, b, "reports must be bit-identical");
        assert_eq!(snap_a, snap_b, "obs snapshots must be bit-identical");
        assert_eq!(a.rounds.len(), 3);
        assert!(a.transport.bytes_up > 0 && a.transport.bytes_down > 0);
        assert!(a.sim_clock_s > 0.0);
        assert!(a.events >= 3 * 2, "at least start+end per round");
    }

    #[test]
    fn wave_width_never_changes_results() {
        let run = |wave: usize| {
            let mut pop = Population::new(PopulationSpec::mobile_mix(300, 3));
            let cfg = SimConfig { wave, ..small_cfg(9) };
            run_population(&cfg, &mut pop, vec![0.1; 8], &toy_trainer(), None).unwrap()
        };
        let serial = run(1);
        for wave in [2, 7, 32] {
            assert_eq!(serial, run(wave), "wave={wave}");
        }
    }

    #[test]
    fn shard_count_never_changes_results() {
        let run = |shards: usize| {
            let mut pop = Population::new(PopulationSpec::mobile_mix(300, 3));
            let cfg = SimConfig { shards, ..small_cfg(9) };
            run_population(&cfg, &mut pop, vec![0.1; 8], &toy_trainer(), None).unwrap()
        };
        let one = run(1);
        for shards in [2, 8, 13] {
            assert_eq!(one, run(shards), "shards={shards}");
        }
    }

    #[test]
    fn two_level_topology_delivers_and_accounts_backhaul() {
        let mut pop = Population::new(PopulationSpec::mobile_mix(400, 21));
        let flat = run_population(
            &small_cfg(13),
            &mut Population::new(PopulationSpec::mobile_mix(400, 21)),
            vec![0.2; 8],
            &toy_trainer(),
            None,
        )
        .unwrap();
        let cfg = SimConfig {
            topology: Topology::TwoLevel { edges: 4, backhaul: NetworkProfile::wifi() },
            ..small_cfg(13)
        };
        let two = run_population(&cfg, &mut pop, vec![0.2; 8], &toy_trainer(), None).unwrap();
        assert!(two.rounds.iter().any(|r| r.delivered > 0), "edges deliver updates");
        assert!(
            two.transport.messages_up > flat.transport.messages_up,
            "backhaul hops add uplink messages: {} vs {}",
            two.transport.messages_up,
            flat.transport.messages_up
        );
    }

    #[test]
    fn unreachable_quorum_is_a_typed_error() {
        let mut pop = Population::new(PopulationSpec::mobile_mix(200, 8));
        let cfg = SimConfig {
            faults: FaultPlan { dropout_prob: 1.0, ..FaultPlan::none() },
            quorum_fraction: 0.5,
            max_failed_rounds: 3,
            rounds: 50,
            ..small_cfg(2)
        };
        let err = run_population(&cfg, &mut pop, vec![0.0; 4], &toy_trainer(), None).unwrap_err();
        match err {
            SimError::QuorumUnreachable { round, needed, got } => {
                assert_eq!(round, 3, "gives up after max_failed_rounds misses");
                assert!(needed >= 1);
                assert_eq!(got, 0);
            }
            other => panic!("expected QuorumUnreachable, got {other:?}"),
        }
        assert!(
            run_population(
                &SimConfig::default(),
                &mut Population::new(PopulationSpec::mobile_mix(0, 1)),
                vec![0.0; 4],
                &toy_trainer(),
                None,
            )
            .is_err(),
            "empty population is a typed error"
        );
    }

    #[test]
    fn obs_counters_and_clock_track_the_run() {
        let mut pop = Population::new(PopulationSpec::mobile_mix(500, 77));
        let obs = Obs::sim();
        let report =
            run_population(&small_cfg(5), &mut pop, vec![0.5; 16], &toy_trainer(), Some(&obs))
                .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("sim.events"), Some(report.events));
        let delivered: u64 = report.rounds.iter().map(|r| r.delivered as u64).sum();
        assert_eq!(snap.counter("fed.updates"), Some(delivered));
        assert_eq!(snap.counter("sim.arrivals"), Some(delivered));
        let selected: u64 = report.rounds.iter().map(|r| r.cohort as u64).sum();
        assert_eq!(snap.counter("fed.selected"), Some(selected));
        assert_eq!(snap.counter("sim.bytes_up"), Some(report.transport.bytes_up));
        assert_eq!(snap.now_ns as f64 / 1e9, report.sim_clock_s);
        // one sim.run root holding one fed.round child per round
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "sim.run");
        assert_eq!(snap.spans[0].children.len(), report.rounds.len());
    }
}
