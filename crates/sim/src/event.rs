//! A deterministic discrete-event queue over virtual time.
//!
//! Events are ordered by `(time_ns, insertion sequence)`: two events at
//! the same virtual instant pop in the order they were pushed, so the
//! schedule is a pure function of the pushes — no hash-map iteration
//! order, no thread timing, no tie-break randomness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timestamped event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    now_ns: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(u64, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, popped: 0, now_ns: 0 }
    }

    /// Schedules `event` at absolute virtual time `at_ns`. Scheduling in
    /// the past is clamped to *now*: the event fires at the current
    /// instant, after everything already queued there.
    pub fn push(&mut self, at_ns: u64, event: E) {
        let at = at_ns.max(self.now_ns);
        self.heap.push(Entry { key: Reverse((at, self.seq)), event });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let entry = self.heap.pop()?;
        let (at, _) = entry.key.0;
        self.now_ns = at;
        self.popped += 1;
        Some((at, entry.event))
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Total events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")]);
        assert_eq!(q.now_ns(), 30);
        assert_eq!(q.events_processed(), 4);
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        // scheduling into the past fires "now", after anything queued now
        q.push(100, "same-instant");
        q.push(5, "past");
        assert_eq!(q.pop(), Some((100, "same-instant")));
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.now_ns(), 100);
        assert!(q.is_empty());
    }
}
