//! # mdl-sim
//!
//! Event-driven, population-scale federated simulation (§II-B at
//! deployment scale). The legacy federated loop holds every client's
//! dataset, RNG and link in memory — fine for 10 clients, hopeless for
//! the 100k-device populations the paper's deployment story assumes.
//! `mdl-sim` restructures the simulation around four ideas:
//!
//! * **virtual time** — a deterministic [`EventQueue`] schedules round
//!   starts, update arrivals and round ends; the `mdl-obs` sim clock
//!   advances event by event, so timestamps are a pure function of seeds;
//! * **compact availability state** — each client is ~80 bytes of
//!   lazily-advanced ON/OFF renewal chains ([`Population`]) built from
//!   `mdl-mobile` [`AvailabilityProfile`](mdl_mobile::AvailabilityProfile)
//!   dwell parameters, gating eligibility (idle ∧ charging ∧ unmetered);
//! * **stateless keyed draws** — cohort sampling ([`sample_cohort`]),
//!   fault fates, link jitter and training seeds all hash
//!   `(seed, round, client id)`, so no RNG stream ever needs aligning
//!   across cohorts of different sizes;
//! * **streaming aggregation** — updates fold into a fixed-point
//!   [`ShardedAggregator`] whose mean is bit-identical for any shard
//!   count, accumulation order or thread count, in O(shards × dim)
//!   memory.
//!
//! [`run_population`] composes all four into the population engine;
//! [`run_legacy_loop`] drives the classic fixed-cohort loop with the
//! exact RNG consumption of the original implementation, so the
//! federated crate's public API is now a thin adapter over this crate.
//!
//! ```
//! use mdl_sim::{
//!     run_population, CohortSpec, Population, PopulationSpec, SimConfig,
//! };
//!
//! let mut pop = Population::new(PopulationSpec::mobile_mix(2_000, 7));
//! let cfg = SimConfig {
//!     rounds: 2,
//!     cohort: CohortSpec { fraction: 0.05, min_size: 4, max_size: 64 },
//!     seed: 42,
//!     ..SimConfig::default()
//! };
//! let trainer = (
//!     |_client: u64| 20u64,
//!     |_client: u64, _seed: u64, global: &[f32]| {
//!         global.iter().map(|g| g + 0.01).collect::<Vec<f32>>()
//!     },
//! );
//! let report = run_population(&cfg, &mut pop, vec![0.0; 8], &trainer, None).unwrap();
//! assert_eq!(report.rounds.len(), 2);
//! assert!(report.sim_clock_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cohort;
pub mod engine;
pub mod event;
pub mod population;
pub mod seed;

pub use aggregate::{BufferedAggregator, LocalUpdate, ShardedAggregator};
pub use cohort::{sample_cohort, CohortSpec};
pub use engine::{
    run_legacy_loop, run_population, ClientTrainer, LegacyConfig, PopulationReport, RoundOutcome,
    SimConfig, SimError, Topology,
};
pub use event::EventQueue;
pub use population::{ClientClass, Population, PopulationSpec};
pub use seed::{keyed_hash, SeedStream};

#[cfg(test)]
mod proptests {
    use crate::cohort::{sample_cohort, CohortSpec};
    use crate::{LocalUpdate, ShardedAggregator};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Cohort sampling: deterministic per seed, duplicate-free, sized
        // within bounds, independent of eligible-list order.
        #[test]
        fn cohorts_are_deterministic_unique_and_bounded(
            seed in any::<u64>(),
            round in 1usize..100,
            n in 0u64..2_000,
            fraction in 0.0f64..1.0,
            min in 1usize..32,
            extra in 0usize..64,
        ) {
            let spec = CohortSpec { fraction, min_size: min, max_size: min + extra };
            let eligible: Vec<u64> = (0..n).map(|i| i * 7 + 3).collect();
            let cohort = sample_cohort(&eligible, &spec, seed, round);
            prop_assert_eq!(cohort.clone(), sample_cohort(&eligible, &spec, seed, round));
            let mut shuffled = eligible.clone();
            shuffled.reverse();
            prop_assert_eq!(cohort.clone(), sample_cohort(&shuffled, &spec, seed, round));
            let mut unique = cohort.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(unique.len(), cohort.len(), "no duplicates");
            prop_assert_eq!(cohort.len(), spec.target(eligible.len()));
            prop_assert!(cohort.len() <= eligible.len());
            prop_assert!(cohort.iter().all(|id| eligible.contains(id)));
        }

        // The sharded streaming mean is bit-identical for 1 vs 8 shards,
        // whatever the updates look like.
        #[test]
        fn sharded_mean_is_shard_invariant(
            seed in any::<u64>(),
            updates in 1usize..40,
            dim in 1usize..24,
        ) {
            let mut stream = crate::SeedStream::new(seed, 0, 0);
            let batch: Vec<LocalUpdate> = (0..updates)
                .map(|_| {
                    let values: Vec<f32> = (0..dim)
                        .map(|_| (stream.next_f64() as f32 - 0.5) * 20.0)
                        .collect();
                    LocalUpdate::dense(values, 1 + stream.next_u64() % 1000)
                })
                .collect();
            let fold = |shards: usize| {
                let mut agg = ShardedAggregator::new(dim, shards);
                for (i, u) in batch.iter().enumerate() {
                    agg.accumulate(i, &u.values, u.num_examples);
                }
                agg.mean()
            };
            prop_assert_eq!(fold(1), fold(8));
        }
    }
}
