//! A client population with compact per-client availability state.
//!
//! 100k+ clients never fit as 100k `Dataset`s or 100k RNGs. Instead each
//! client is ~80 bytes: a class index (which [`ClientClass`] it belongs
//! to) plus three alternating-renewal attribute chains — idle, charging,
//! unmetered — each an `(on, next_flip_ns, SeedStream)` triple. Chains
//! advance **lazily**: asking whether a client is eligible at virtual time
//! `t` fast-forwards its flips up to `t` and nothing else ever touches it.
//! Every dwell draw comes from the client's own keyed stream, so the
//! trajectory of client 77 is a pure function of `(population seed, 77)` —
//! independent of who else was queried, in what order, or how often.

use crate::seed::SeedStream;
use mdl_mobile::{AvailabilityProfile, DeviceProfile, NetworkProfile};
use serde::{Deserialize, Serialize};

/// Domain separators for the per-client draw streams.
const CLASS_DOMAIN: u64 = 0xC1A5_5000_0000_0000;
const ATTR_DOMAIN: u64 = 0xA77E_0000_0000_0000;

/// Finite dwells shorter than this are clamped up, so a degenerate
/// profile (mean → 0) cannot wedge the lazy advance in an endless flip
/// loop.
const MIN_DWELL_NS: u64 = 1_000_000; // 1 ms

/// One stratum of the population: a device tier, its availability
/// dynamics and its radio, weighted by prevalence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientClass {
    /// Relative prevalence (normalised over the spec's classes).
    pub weight: f64,
    /// Compute tier (drives local-training time).
    pub device: DeviceProfile,
    /// Dwell-time dynamics of the §II-B eligibility attributes.
    pub availability: AvailabilityProfile,
    /// Radio the client's link is built from.
    pub network: NetworkProfile,
}

/// Declarative description of a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of clients.
    pub size: u64,
    /// Strata; each client is assigned one by a keyed hash of its id.
    pub classes: Vec<ClientClass>,
    /// Seed for class assignment and every availability chain.
    pub seed: u64,
}

impl PopulationSpec {
    /// A single-stratum population.
    pub fn uniform(size: u64, class: ClientClass, seed: u64) -> Self {
        Self { size, classes: vec![class], seed }
    }

    /// The default §II deployment mix: half commuting mid-range phones on
    /// LTE, a third overnight flagships on Wi-Fi, the rest wearables
    /// tethered over Wi-Fi.
    pub fn mobile_mix(size: u64, seed: u64) -> Self {
        Self {
            size,
            classes: vec![
                ClientClass {
                    weight: 0.5,
                    device: DeviceProfile::midrange_phone(),
                    availability: AvailabilityProfile::commuter_phone(),
                    network: NetworkProfile::lte(),
                },
                ClientClass {
                    weight: 0.35,
                    device: DeviceProfile::flagship_phone(),
                    availability: AvailabilityProfile::overnight_phone(),
                    network: NetworkProfile::wifi(),
                },
                ClientClass {
                    weight: 0.15,
                    device: DeviceProfile::wearable(),
                    availability: AvailabilityProfile::wearable(),
                    network: NetworkProfile::wifi(),
                },
            ],
            seed,
        }
    }

    /// A population that is always eligible — legacy semantics, useful
    /// for isolating transport effects from availability effects.
    pub fn always_eligible(size: u64, network: NetworkProfile, seed: u64) -> Self {
        Self::uniform(
            size,
            ClientClass {
                weight: 1.0,
                device: DeviceProfile::flagship_phone(),
                availability: AvailabilityProfile::always_eligible(),
                network,
            },
            seed,
        )
    }
}

/// One ON/OFF renewal chain, advanced lazily in virtual time.
#[derive(Debug, Clone)]
struct AttrChain {
    stream: SeedStream,
    next_flip_ns: u64,
    on: bool,
}

impl AttrChain {
    fn init(seed: u64, id: u64, attr: u64, mean_on_s: f64, mean_off_s: f64) -> Self {
        let mut stream = SeedStream::new(seed ^ ATTR_DOMAIN, id, attr);
        // start in steady state so round 1 sees realistic eligibility
        let p_on = if mean_on_s.is_infinite() || mean_off_s <= 0.0 {
            1.0
        } else if mean_on_s <= 0.0 {
            0.0
        } else {
            mean_on_s / (mean_on_s + mean_off_s)
        };
        let on = stream.next_f64() < p_on;
        let mut chain = Self { stream, next_flip_ns: 0, on };
        chain.next_flip_ns = chain.draw_flip(0, if on { mean_on_s } else { mean_off_s });
        chain
    }

    fn draw_flip(&mut self, now_ns: u64, mean_s: f64) -> u64 {
        let dwell = AvailabilityProfile::dwell_s(mean_s, self.stream.next_f64());
        if dwell.is_infinite() {
            return u64::MAX;
        }
        let dwell_ns = ((dwell * 1e9) as u64).max(MIN_DWELL_NS);
        now_ns.saturating_add(dwell_ns)
    }

    fn advance_to(&mut self, t_ns: u64, mean_on_s: f64, mean_off_s: f64) {
        while self.next_flip_ns <= t_ns {
            let flip_at = self.next_flip_ns;
            self.on = !self.on;
            let mean = if self.on { mean_on_s } else { mean_off_s };
            self.next_flip_ns = self.draw_flip(flip_at, mean);
        }
    }
}

#[derive(Debug, Clone)]
struct ClientState {
    class: u32,
    idle: AttrChain,
    charging: AttrChain,
    unmetered: AttrChain,
}

/// The instantiated population: one compact state machine per client.
#[derive(Debug)]
pub struct Population {
    spec: PopulationSpec,
    states: Vec<ClientState>,
}

impl Population {
    /// Instantiates `spec`, assigning each client a class by keyed hash
    /// of its id against the cumulative class weights.
    ///
    /// # Panics
    ///
    /// Panics when the spec has no classes or no positive weight.
    pub fn new(spec: PopulationSpec) -> Self {
        assert!(!spec.classes.is_empty(), "population needs at least one class");
        let total: f64 = spec.classes.iter().map(|c| c.weight.max(0.0)).sum();
        assert!(total > 0.0, "population class weights must be positive");
        let states = (0..spec.size)
            .map(|id| {
                let mut pick = SeedStream::new(spec.seed ^ CLASS_DOMAIN, id, 0);
                let mut u = pick.next_f64() * total;
                let mut class = spec.classes.len() - 1;
                for (i, c) in spec.classes.iter().enumerate() {
                    u -= c.weight.max(0.0);
                    if u < 0.0 {
                        class = i;
                        break;
                    }
                }
                let a = &spec.classes[class].availability;
                ClientState {
                    class: class as u32,
                    idle: AttrChain::init(spec.seed, id, 0, a.mean_idle_s, a.mean_active_s),
                    charging: AttrChain::init(
                        spec.seed,
                        id,
                        1,
                        a.mean_charging_s,
                        a.mean_unplugged_s,
                    ),
                    unmetered: AttrChain::init(
                        spec.seed,
                        id,
                        2,
                        a.mean_unmetered_s,
                        a.mean_metered_s,
                    ),
                }
            })
            .collect();
        Self { spec, states }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The spec this population was built from.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// The class of one client.
    pub fn class_of(&self, id: u64) -> &ClientClass {
        &self.spec.classes[self.states[id as usize].class as usize]
    }

    /// Advances `id`'s chains to virtual time `t_ns` and reports whether
    /// it is eligible (idle ∧ charging ∧ unmetered) at that instant.
    pub fn is_eligible_at(&mut self, id: u64, t_ns: u64) -> bool {
        let class = self.states[id as usize].class as usize;
        let a = &self.spec.classes[class].availability;
        let (idle_on, idle_off) = (a.mean_idle_s, a.mean_active_s);
        let (chg_on, chg_off) = (a.mean_charging_s, a.mean_unplugged_s);
        let (um_on, um_off) = (a.mean_unmetered_s, a.mean_metered_s);
        let s = &mut self.states[id as usize];
        s.idle.advance_to(t_ns, idle_on, idle_off);
        s.charging.advance_to(t_ns, chg_on, chg_off);
        s.unmetered.advance_to(t_ns, um_on, um_off);
        s.idle.on && s.charging.on && s.unmetered.on
    }

    /// Ids of every client eligible at `t_ns`, in ascending id order.
    pub fn eligible_at(&mut self, t_ns: u64) -> Vec<u64> {
        (0..self.states.len() as u64).filter(|&id| self.is_eligible_at(id, t_ns)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_assignment_tracks_weights() {
        let pop = Population::new(PopulationSpec::mobile_mix(20_000, 9));
        let mut counts = [0usize; 3];
        for id in 0..20_000u64 {
            counts[pop.states[id as usize].class as usize] += 1;
        }
        let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / 20_000.0).collect();
        assert!((fracs[0] - 0.5).abs() < 0.02, "{fracs:?}");
        assert!((fracs[1] - 0.35).abs() < 0.02, "{fracs:?}");
        assert!((fracs[2] - 0.15).abs() < 0.02, "{fracs:?}");
    }

    #[test]
    fn eligibility_tracks_duty_cycle_in_steady_state() {
        let spec = PopulationSpec::uniform(
            10_000,
            ClientClass {
                weight: 1.0,
                device: DeviceProfile::flagship_phone(),
                availability: AvailabilityProfile::overnight_phone(),
                network: NetworkProfile::wifi(),
            },
            4,
        );
        let duty = spec.classes[0].availability.duty_cycle();
        let mut pop = Population::new(spec);
        let frac = pop.eligible_at(0).len() as f64 / 10_000.0;
        assert!((frac - duty).abs() < 0.03, "t=0 eligible {frac} vs duty {duty}");
        // hours later the chains have churned but the rate holds
        let later = 3600 * 5 * 1_000_000_000u64;
        let frac_later = pop.eligible_at(later).len() as f64 / 10_000.0;
        assert!((frac_later - duty).abs() < 0.03, "t=5h eligible {frac_later} vs duty {duty}");
    }

    #[test]
    fn trajectories_are_independent_of_query_pattern() {
        let spec = PopulationSpec::mobile_mix(64, 11);
        let t1 = 600 * 1_000_000_000u64;
        let t2 = 7200 * 1_000_000_000u64;
        // population A: queried at t1 then t2; population B: only at t2
        let mut a = Population::new(spec.clone());
        let _ = a.eligible_at(t1);
        let at_t2 = a.eligible_at(t2);
        let mut b = Population::new(spec);
        assert_eq!(at_t2, b.eligible_at(t2), "lazy advance must not depend on query history");
    }

    #[test]
    fn always_eligible_population_never_gates() {
        let mut pop =
            Population::new(PopulationSpec::always_eligible(100, NetworkProfile::wifi(), 1));
        assert_eq!(pop.eligible_at(0).len(), 100);
        assert_eq!(pop.eligible_at(86_400 * 1_000_000_000).len(), 100);
        assert_eq!(pop.class_of(3).availability.name, "always-eligible");
    }
}
