//! Storable seeded streams: the same SplitMix64 sequence as
//! [`mdl_net::stream_u64`], but as a 8-byte value type that can live
//! inside a per-client state machine. One stream per `(domain, a, b)` key;
//! draws never alias across keys and are identical on every platform.

/// SplitMix64 finalizer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A compact (8-byte) deterministic `u64`/`f64` stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream(u64);

impl SeedStream {
    /// A stream keyed by `(a, b, c)`; different keys give decorrelated
    /// streams.
    pub fn new(a: u64, b: u64, c: u64) -> Self {
        Self(mix(mix(mix(a).wrapping_add(b)).wrapping_add(c)))
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.0)
    }

    /// Next uniform draw in `[0, 1)` (53 mantissa bits, the same
    /// convention `rand` uses for `f64`).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One stateless keyed draw (stream position 0) — for rank-based cohort
/// sampling where every `(seed, round, id)` needs exactly one hash.
#[inline]
pub fn keyed_hash(a: u64, b: u64, c: u64) -> u64 {
    SeedStream::new(a, b, c).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_keyed() {
        let draws = |a, b, c| {
            let mut s = SeedStream::new(a, b, c);
            (0..8).map(|_| s.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(1, 2, 3), draws(1, 2, 3));
        assert_ne!(draws(1, 2, 3), draws(1, 2, 4));
        assert_ne!(draws(1, 2, 3), draws(2, 1, 3));
    }

    #[test]
    fn f64_draws_are_uniformish() {
        let mut s = SeedStream::new(7, 7, 7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut t = SeedStream::new(0, 0, 0);
        for _ in 0..1000 {
            let x = t.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn keyed_hash_is_stream_head() {
        assert_eq!(keyed_hash(4, 5, 6), SeedStream::new(4, 5, 6).next_u64());
    }
}
