//! Private cloud-based inference (§III-A, Fig. 3; reference [30], "ARDEN").
//!
//! The pretrained network is split: a **frozen local part** runs on the
//! device and produces a compact representation; the representation is
//! perturbed by **nullification** (random zeroing) and **Gaussian noise**
//! before leaving the device; the **cloud part** finishes the inference.
//! To keep accuracy under perturbation, the cloud part is re-trained with
//! **noisy training** — public data pushed through the same perturbed
//! transform.

use mdl_nn::loss::softmax_cross_entropy;
use mdl_nn::{Adam, Layer, Mode, Optimizer, Sequential};
use mdl_privacy::GaussianMechanism;
use mdl_tensor::init::gaussian;
use mdl_tensor::linalg::clip_l2;
use mdl_tensor::Matrix;
use rand::Rng;

/// Perturbation and split configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArdenConfig {
    /// Layers executed locally before the upload.
    pub split_at: usize,
    /// Fraction of representation units zeroed per inference (μ).
    pub nullification_rate: f32,
    /// Std of the Gaussian noise added to the (clipped) representation.
    pub noise_sigma: f32,
    /// L2 bound the representation is clipped to before noising — the
    /// sensitivity anchor for the differential-privacy statement.
    pub clip_norm: f32,
}

impl Default for ArdenConfig {
    fn default() -> Self {
        Self { split_at: 1, nullification_rate: 0.2, noise_sigma: 0.5, clip_norm: 5.0 }
    }
}

/// The split private-inference engine.
pub struct Arden {
    local: Sequential,
    cloud: Sequential,
    config: ArdenConfig,
}

impl std::fmt::Debug for Arden {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arden")
            .field("local_layers", &self.local.len())
            .field("cloud_layers", &self.cloud.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Arden {
    /// Splits a pretrained network at `config.split_at`; the local part is
    /// frozen from here on (its weights are never updated again).
    ///
    /// # Panics
    ///
    /// Panics if the split point is 0 or ≥ the layer count (both sides
    /// need at least one layer).
    pub fn from_pretrained(net: Sequential, config: ArdenConfig) -> Self {
        assert!(
            config.split_at >= 1 && config.split_at < net.len(),
            "split must leave at least one layer on each side"
        );
        let (local, cloud) = net.split_at(config.split_at);
        Self { local, cloud, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ArdenConfig {
        &self.config
    }

    /// Width of the transmitted representation.
    pub fn representation_dim(&self) -> usize {
        self.local.info().out_dim
    }

    /// Bytes on the wire per example: fp32 representation.
    pub fn representation_bytes(&self) -> u64 {
        4 * self.representation_dim() as u64
    }

    /// Runs the frozen local network *without* perturbation (training-side
    /// helper; real inferences use [`Arden::transform`]).
    pub fn transform_clean(&mut self, x: &Matrix) -> Matrix {
        self.local.forward(x, Mode::Eval)
    }

    /// Device-side transform: local forward, clip, nullify, noise.
    pub fn transform(&mut self, x: &Matrix, rng: &mut impl Rng) -> Matrix {
        let rep = self.local.forward(x, Mode::Eval);
        self.perturb(&rep, rng)
    }

    /// Applies clip → nullification → Gaussian noise to a representation.
    pub fn perturb(&mut self, rep: &Matrix, rng: &mut impl Rng) -> Matrix {
        let mut out = rep.clone();
        let cfg = &self.config;
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            clip_l2(row, cfg.clip_norm as f64);
            for v in row.iter_mut() {
                if rng.gen::<f32>() < cfg.nullification_rate {
                    *v = 0.0;
                } else if cfg.noise_sigma > 0.0 {
                    *v += gaussian(rng) * cfg.noise_sigma;
                }
            }
        }
        out
    }

    /// Cloud-side half of one inference.
    pub fn cloud_logits(&mut self, representation: &Matrix) -> Matrix {
        self.cloud.forward(representation, Mode::Eval)
    }

    /// Full private inference: device transform → upload → cloud classify.
    pub fn infer(&mut self, x: &Matrix, rng: &mut impl Rng) -> Vec<usize> {
        let rep = self.transform(x, rng);
        self.cloud_logits(&rep).argmax_rows()
    }

    /// Accuracy of private inference over a labelled set.
    pub fn accuracy(&mut self, x: &Matrix, labels: &[usize], rng: &mut impl Rng) -> f64 {
        let pred = self.infer(x, rng);
        mdl_data::metrics::accuracy(labels, &pred)
    }

    /// **Noisy training** (the paper's §III-A contribution): re-trains the
    /// cloud part on *public* data pushed through the frozen local network
    /// with fresh perturbations every epoch, making the cloud robust to
    /// the noise it will see at inference time.
    ///
    /// The local network's weights are never touched.
    pub fn noisy_train(
        &mut self,
        public_x: &Matrix,
        public_y: &[usize],
        epochs: usize,
        learning_rate: f32,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        use rand::seq::SliceRandom;
        let mut opt = Adam::new(learning_rate);
        let mut losses = Vec::with_capacity(epochs);
        let clean = self.transform_clean(public_x);
        let batch = 32usize;
        for _ in 0..epochs {
            // fresh noisy replicas each epoch: raw + generated noisy samples
            let noisy = self.perturb(&clean, rng);
            let both = clean.vstack(&noisy);
            let mut labels = public_y.to_vec();
            labels.extend_from_slice(public_y);

            let mut order: Vec<usize> = (0..labels.len()).collect();
            order.shuffle(rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let bx = both.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                self.cloud.zero_grad();
                let logits = self.cloud.forward(&bx, Mode::Train);
                let (loss, grad) = softmax_cross_entropy(&logits, &by);
                let _ = self.cloud.backward(&grad);
                opt.step(&mut self.cloud);
                epoch_loss += loss as f64;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f64);
        }
        losses
    }

    /// Single-release `(ε, δ)` of one transformed upload, from the Gaussian
    /// mechanism over the clipped representation (sensitivity `2·clip_norm`
    /// for a record swap). Nullification only strengthens privacy, so this
    /// is conservative. Returns `f64::INFINITY` when `noise_sigma == 0`.
    pub fn privacy_epsilon(&self, delta: f64) -> f64 {
        if self.config.noise_sigma <= 0.0 {
            return f64::INFINITY;
        }
        let sensitivity = 2.0 * self.config.clip_norm as f64;
        let multiplier = self.config.noise_sigma as f64 / sensitivity;
        GaussianMechanism::new(sensitivity, multiplier).epsilon_single_shot(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::synthetic::synthetic_digits;
    use mdl_nn::{fit_classifier, Activation, Dense, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pretrained(rng: &mut StdRng) -> (Sequential, mdl_data::Dataset, mdl_data::Dataset) {
        let data = synthetic_digits(800, 0.08, rng);
        let (train, test) = data.split(0.75, rng);
        let mut net = Sequential::new();
        net.push(Dense::new(64, 32, Activation::Relu, rng));
        net.push(Dense::new(32, 32, Activation::Relu, rng));
        net.push(Dense::new(32, 10, Activation::Identity, rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 30, ..Default::default() },
            rng,
        );
        (net, train, test)
    }

    #[test]
    fn unperturbed_split_matches_original() {
        let mut rng = StdRng::seed_from_u64(310);
        let (net, _, test) = pretrained(&mut rng);
        let base = net.accuracy(&test.x, &test.y);
        let mut arden = Arden::from_pretrained(
            net,
            ArdenConfig { split_at: 1, nullification_rate: 0.0, noise_sigma: 0.0, clip_norm: 1e9 },
        );
        let acc = arden.accuracy(&test.x, &test.y, &mut rng);
        assert!((acc - base).abs() < 1e-9, "no perturbation ⇒ identical accuracy");
    }

    #[test]
    fn noise_hurts_and_noisy_training_recovers() {
        let mut rng = StdRng::seed_from_u64(311);
        let (net, train, test) = pretrained(&mut rng);
        let cfg =
            ArdenConfig { split_at: 1, nullification_rate: 0.2, noise_sigma: 0.5, clip_norm: 5.0 };
        let mut arden = Arden::from_pretrained(net, cfg);
        let before = arden.accuracy(&test.x, &test.y, &mut rng);
        let losses = arden.noisy_train(&train.x, &train.y, 25, 0.005, &mut rng);
        let after = arden.accuracy(&test.x, &test.y, &mut rng);
        assert!(
            after > before + 0.05,
            "noisy training should recover accuracy: {before} → {after}"
        );
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn representation_is_smaller_than_raw_input() {
        let mut rng = StdRng::seed_from_u64(312);
        let (net, _, _) = pretrained(&mut rng);
        let arden = Arden::from_pretrained(net, ArdenConfig::default());
        // raw input: 64 fp32 = 256 B; representation: 32 fp32 = 128 B
        assert!(arden.representation_bytes() < 4 * 64);
        assert_eq!(arden.representation_dim(), 32);
    }

    #[test]
    fn nullification_zeroes_expected_fraction() {
        let mut rng = StdRng::seed_from_u64(313);
        let (net, _, test) = pretrained(&mut rng);
        let mut arden = Arden::from_pretrained(
            net,
            ArdenConfig { split_at: 1, nullification_rate: 0.5, noise_sigma: 0.0, clip_norm: 1e9 },
        );
        // ReLU representations contain natural zeros; nullification zeroes
        // half of everything on top: after ≈ μ + (1−μ)·before
        let clean = arden.transform_clean(&test.x);
        let before =
            clean.as_slice().iter().filter(|&&v| v == 0.0).count() as f64 / clean.len() as f64;
        let rep = arden.transform(&test.x, &mut rng);
        let after = rep.as_slice().iter().filter(|&&v| v == 0.0).count() as f64 / rep.len() as f64;
        let expected = 0.5 + 0.5 * before;
        assert!((after - expected).abs() < 0.05, "after={after} expected≈{expected}");
    }

    #[test]
    fn privacy_epsilon_decreases_with_noise() {
        let mut rng = StdRng::seed_from_u64(314);
        let (net, _, _) = pretrained(&mut rng);
        let mk = |sigma: f32, net: Sequential| {
            Arden::from_pretrained(net, ArdenConfig { noise_sigma: sigma, ..Default::default() })
        };
        let split = mk(0.5, net);
        let eps_mild = split.privacy_epsilon(1e-5);
        // rebuild quickly for a different σ
        let (net2, _, _) = pretrained(&mut rng);
        let eps_strong = mk(4.0, net2).privacy_epsilon(1e-5);
        assert!(eps_strong < eps_mild, "{eps_strong} < {eps_mild}");
        let (net3, _, _) = pretrained(&mut rng);
        assert!(mk(0.0, net3).privacy_epsilon(1e-5).is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_degenerate_split() {
        let mut rng = StdRng::seed_from_u64(315);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 2, Activation::Identity, &mut rng));
        let _ = Arden::from_pretrained(net, ArdenConfig { split_at: 1, ..Default::default() });
    }
}
