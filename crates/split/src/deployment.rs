//! Deployment comparison: the three serving strategies of §III side by
//! side — on-device (private, battery-hungry), cloud (cheap locally, raw
//! data leaves the device), and ARDEN split inference (perturbed
//! representation leaves the device).

use crate::arden::Arden;
use mdl_mobile::{
    placement_cost, CostEstimate, DeviceProfile, NetworkProfile, Placement, Scenario,
};
use mdl_nn::Sequential;

/// One row of the deployment-comparison table.
#[derive(Debug, Clone)]
pub struct DeploymentRow {
    /// Strategy label.
    pub strategy: &'static str,
    /// Device-side latency and energy.
    pub cost: CostEstimate,
    /// Bytes uploaded per inference.
    pub upload_bytes: u64,
    /// Whether raw input data ever leaves the device.
    pub raw_data_leaves_device: bool,
    /// `(ε, δ=1e-5)` of what leaves the device (`0` when nothing leaves,
    /// `∞` when raw data leaves).
    pub epsilon: f64,
}

/// Builds the Fig. 2 / Fig. 3 comparison for a given model and environment.
pub fn compare_deployments(
    net: &Sequential,
    arden: &Arden,
    device: &DeviceProfile,
    cloud: &DeviceProfile,
    network: &NetworkProfile,
    input_bytes: u64,
) -> Vec<DeploymentRow> {
    let layers = net.layer_infos();
    let result_bytes = 4 * layers.last().map(|l| l.out_dim as u64).unwrap_or(0);
    let scenario = Scenario { layers, input_bytes, result_bytes, bytes_per_weight: 4.0 };
    let split_at = arden.config().split_at;

    vec![
        DeploymentRow {
            strategy: "on-device",
            cost: placement_cost(Placement::OnDevice, &scenario, device, cloud, network),
            upload_bytes: 0,
            raw_data_leaves_device: false,
            epsilon: 0.0,
        },
        DeploymentRow {
            strategy: "cloud",
            cost: placement_cost(Placement::Cloud, &scenario, device, cloud, network),
            upload_bytes: input_bytes,
            raw_data_leaves_device: true,
            epsilon: f64::INFINITY,
        },
        DeploymentRow {
            strategy: "arden-split",
            cost: placement_cost(
                Placement::Split { local_layers: split_at },
                &scenario,
                device,
                cloud,
                network,
            ),
            upload_bytes: arden.representation_bytes(),
            raw_data_leaves_device: false,
            epsilon: arden.privacy_epsilon(1e-5),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arden::ArdenConfig;
    use mdl_nn::{Activation, Dense, ParamVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(rng: &mut StdRng) -> Sequential {
        let mut n = Sequential::new();
        n.push(Dense::new(64, 16, Activation::Relu, rng));
        n.push(Dense::new(16, 10, Activation::Identity, rng));
        n
    }

    #[test]
    fn comparison_covers_all_strategies() {
        let mut rng = StdRng::seed_from_u64(320);
        let full = net(&mut rng);
        let mut copy = net(&mut rng);
        // same params for the split copy
        let mut full_mut = full;
        copy.set_param_vector(&full_mut.param_vector());
        let arden = Arden::from_pretrained(copy, ArdenConfig::default());
        let rows = compare_deployments(
            &full_mut,
            &arden,
            &DeviceProfile::midrange_phone(),
            &DeviceProfile::cloud_server(),
            &NetworkProfile::wifi(),
            4 * 64,
        );
        assert_eq!(rows.len(), 3);
        let cloud = rows.iter().find(|r| r.strategy == "cloud").unwrap();
        let split = rows.iter().find(|r| r.strategy == "arden-split").unwrap();
        let local = rows.iter().find(|r| r.strategy == "on-device").unwrap();
        assert!(cloud.raw_data_leaves_device && !split.raw_data_leaves_device);
        assert!(split.epsilon.is_finite() && cloud.epsilon.is_infinite());
        assert_eq!(local.upload_bytes, 0);
        // ARDEN's bottleneck representation uploads less than raw input
        assert!(split.upload_bytes < cloud.upload_bytes);
    }
}
