//! Distributed DNN with a local early exit (§III, reference [25]:
//! Teerapittayanon et al., "Distributed deep neural networks over the
//! cloud, the edge and end devices").
//!
//! The device runs the shallow part of the network plus a small **exit
//! classifier**. When the exit's prediction is confident (low normalised
//! entropy) the device answers immediately — "fast and localized
//! inference" — and only hard examples travel to the cloud for the full
//! model's answer.

use mdl_nn::loss::softmax_cross_entropy;
use mdl_nn::{Activation, Adam, Dense, Layer, Mode, Optimizer, Sequential};
use mdl_tensor::stats::softmax_rows;
use mdl_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A two-tier network: shared trunk on the device, an exit head beside it,
/// and the remainder of the original network in the cloud.
pub struct EarlyExitNetwork {
    trunk: Sequential,
    exit_head: Dense,
    cloud: Sequential,
    classes: usize,
}

impl std::fmt::Debug for EarlyExitNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EarlyExitNetwork")
            .field("trunk_layers", &self.trunk.len())
            .field("cloud_layers", &self.cloud.len())
            .field("classes", &self.classes)
            .finish()
    }
}

/// Outcome of a batch of adaptive inferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitReport {
    /// Fraction of examples answered on the device.
    pub local_fraction: f64,
    /// Accuracy over all examples (local + cloud answers combined).
    pub accuracy: f64,
    /// Accuracy of the examples answered locally.
    pub local_accuracy: f64,
    /// Accuracy of the examples escalated to the cloud.
    pub cloud_accuracy: f64,
    /// Bytes uploaded (only escalated examples ship their representation).
    pub upload_bytes: u64,
}

impl EarlyExitNetwork {
    /// Splits a pretrained network after `split_at` layers and attaches a
    /// fresh linear exit head on the trunk output.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= split_at < net.len()`.
    pub fn from_pretrained(
        net: Sequential,
        split_at: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            split_at >= 1 && split_at < net.len(),
            "split must leave at least one layer on each side"
        );
        let (trunk, cloud) = net.split_at(split_at);
        let width = trunk.info().out_dim;
        let exit_head = Dense::new(width, classes, Activation::Identity, rng);
        Self { trunk, exit_head, cloud, classes }
    }

    /// Trains only the exit head on labelled data (trunk and cloud frozen,
    /// as in the reference design where the main network is pretrained).
    pub fn train_exit(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        epochs: usize,
        learning_rate: f32,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        let rep = self.trunk.forward(x, Mode::Eval);
        let mut opt = Adam::new(learning_rate);
        let mut order: Vec<usize> = (0..labels.len()).collect();
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(32) {
                let bx = rep.select_rows(chunk);
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                self.exit_head.zero_grad();
                let logits = self.exit_head.forward(&bx, Mode::Train);
                let (loss, grad) = softmax_cross_entropy(&logits, &by);
                let _ = self.exit_head.backward(&grad);
                opt.step(&mut self.exit_head);
                total += loss as f64;
                batches += 1;
            }
            losses.push(total / batches.max(1) as f64);
        }
        losses
    }

    /// Normalised entropy (0 = certain, 1 = uniform) of one probability row.
    fn normalized_entropy(probs: &[f32]) -> f64 {
        let h: f64 =
            probs.iter().filter(|&&p| p > 0.0).map(|&p| -(p as f64) * (p as f64).ln()).sum();
        h / (probs.len() as f64).ln()
    }

    /// Runs adaptive inference: answer locally when the exit's normalised
    /// entropy is below `threshold`, otherwise escalate to the cloud.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn infer_adaptive(&mut self, x: &Matrix, labels: &[usize], threshold: f64) -> ExitReport {
        assert_eq!(x.rows(), labels.len(), "one label per example required");
        let rep = self.trunk.forward(x, Mode::Eval);
        let exit_probs = softmax_rows(&self.exit_head.forward(&rep, Mode::Eval));
        let rep_bytes = 4 * rep.cols() as u64;

        let mut local_correct = 0usize;
        let mut local_total = 0usize;
        let mut cloud_correct = 0usize;
        let mut cloud_total = 0usize;
        let mut upload_bytes = 0u64;
        let mut escalate_rows = Vec::new();
        for (r, &label) in labels.iter().enumerate().take(x.rows()) {
            let row = exit_probs.row(r);
            if Self::normalized_entropy(row) < threshold {
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                local_total += 1;
                if pred == label {
                    local_correct += 1;
                }
            } else {
                escalate_rows.push(r);
            }
        }
        if !escalate_rows.is_empty() {
            let hard = rep.select_rows(&escalate_rows);
            upload_bytes += rep_bytes * escalate_rows.len() as u64;
            let cloud_pred = self.cloud.forward(&hard, Mode::Eval).argmax_rows();
            for (k, &r) in escalate_rows.iter().enumerate() {
                cloud_total += 1;
                if cloud_pred[k] == labels[r] {
                    cloud_correct += 1;
                }
            }
        }

        let n = x.rows().max(1);
        ExitReport {
            local_fraction: local_total as f64 / n as f64,
            accuracy: (local_correct + cloud_correct) as f64 / n as f64,
            local_accuracy: local_correct as f64 / local_total.max(1) as f64,
            cloud_accuracy: cloud_correct as f64 / cloud_total.max(1) as f64,
            upload_bytes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_data::synthetic::synthetic_digits;
    use mdl_nn::{fit_classifier, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rng: &mut StdRng) -> (EarlyExitNetwork, mdl_data::Dataset, mdl_data::Dataset) {
        let data = synthetic_digits(1000, 0.08, rng);
        let (train, test) = data.split(0.75, rng);
        let mut net = Sequential::new();
        net.push(Dense::new(64, 32, Activation::Relu, rng));
        net.push(Dense::new(32, 32, Activation::Relu, rng));
        net.push(Dense::new(32, 10, Activation::Identity, rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &train.x,
            &train.y,
            &TrainConfig { epochs: 25, ..Default::default() },
            rng,
        );
        let mut ee = EarlyExitNetwork::from_pretrained(net, 1, 10, rng);
        let _ = ee.train_exit(&train.x, &train.y, 40, 0.01, rng);
        (ee, train, test)
    }

    #[test]
    fn threshold_trades_locality_for_accuracy() {
        let mut rng = StdRng::seed_from_u64(500);
        let (mut ee, _, test) = setup(&mut rng);
        let strict = ee.infer_adaptive(&test.x, &test.y, 0.05);
        let loose = ee.infer_adaptive(&test.x, &test.y, 0.9);
        assert!(
            loose.local_fraction > strict.local_fraction,
            "looser threshold answers more locally: {} vs {}",
            loose.local_fraction,
            strict.local_fraction
        );
        assert!(strict.upload_bytes > loose.upload_bytes, "stricter threshold escalates more");
    }

    #[test]
    fn confident_local_answers_are_accurate() {
        let mut rng = StdRng::seed_from_u64(501);
        let (mut ee, _, test) = setup(&mut rng);
        let report = ee.infer_adaptive(&test.x, &test.y, 0.2);
        // the examples the exit keeps are its easy ones
        assert!(
            report.local_accuracy >= report.accuracy - 0.02,
            "local answers should be at least as accurate as overall: {report:?}"
        );
        assert!(report.local_fraction > 0.1, "some examples must exit early: {report:?}");
    }

    #[test]
    fn zero_threshold_sends_everything_to_cloud() {
        let mut rng = StdRng::seed_from_u64(502);
        let (mut ee, _, test) = setup(&mut rng);
        let report = ee.infer_adaptive(&test.x, &test.y, 0.0);
        assert_eq!(report.local_fraction, 0.0);
        assert!(report.accuracy > 0.8, "cloud path retains full accuracy: {report:?}");
    }

    #[test]
    fn entropy_is_normalised() {
        let uniform = vec![0.25f32; 4];
        assert!((EarlyExitNetwork::normalized_entropy(&uniform) - 1.0).abs() < 1e-9);
        let certain = vec![1.0f32, 0.0, 0.0, 0.0];
        assert_eq!(EarlyExitNetwork::normalized_entropy(&certain), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_bad_split() {
        let mut rng = StdRng::seed_from_u64(503);
        let mut net = Sequential::new();
        net.push(Dense::new(4, 2, Activation::Identity, &mut rng));
        let _ = EarlyExitNetwork::from_pretrained(net, 1, 2, &mut rng);
    }
}
