//! # mdl-split
//!
//! Private cloud-based inference (§III-A of the paper, Fig. 3): the ARDEN
//! framework of reference [30]. The device runs a *frozen* shallow slice of
//! the network, perturbs the resulting representation with nullification
//! and calibrated Gaussian noise, and ships only that perturbed, compact
//! representation to the cloud, which completes the inference with a model
//! hardened by **noisy training**.
//!
//! [`early_exit`] adds the other §III system the survey highlights —
//! reference [25]'s distributed DNN, where a device-side exit answers the
//! easy examples and only hard ones travel to the cloud.
//!
//! [`deployment`] places ARDEN next to the two conventional strategies of
//! Fig. 2 — pure on-device and pure cloud inference — using the
//! `mdl-mobile` cost model, so every experiment can report latency, device
//! energy, upload bytes and privacy in one table.
//!
//! [`offload`] rides the ARDEN upload over an `mdl-net` faulty link:
//! retries and timeouts on the representation upload, with an on-device
//! fallback when the cloud is unreachable.

#![warn(missing_docs)]

pub mod arden;
pub mod deployment;
pub mod early_exit;
pub mod offload;

pub use arden::{Arden, ArdenConfig};
pub use deployment::{compare_deployments, DeploymentRow};
pub use early_exit::{EarlyExitNetwork, ExitReport};
pub use offload::{infer_over_link, OffloadOutcome, ServedBy};

#[cfg(test)]
mod proptests {
    use crate::arden::{Arden, ArdenConfig};
    use mdl_nn::{Activation, Dense, Sequential};
    use mdl_tensor::linalg::l2_norm;
    use mdl_tensor::Matrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn perturbed_rows_respect_clip_plus_noise_budget(
            seed in 0u64..100,
            clip_x10 in 5u32..50,
            mu_pct in 0u32..80,
        ) {
            let clip = clip_x10 as f32 / 10.0;
            let mu = mu_pct as f32 / 100.0;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = Sequential::new();
            net.push(Dense::new(6, 8, Activation::Identity, &mut rng));
            net.push(Dense::new(8, 2, Activation::Identity, &mut rng));
            let mut arden = Arden::from_pretrained(
                net,
                ArdenConfig { split_at: 1, nullification_rate: mu, noise_sigma: 0.0, clip_norm: clip },
            );
            let x = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32).sin() * 3.0);
            let rep = arden.transform(&x, &mut rng);
            // with zero noise, every row norm is at most the clip bound
            for r in 0..rep.rows() {
                prop_assert!(l2_norm(rep.row(r)) <= clip as f64 + 1e-4);
            }
        }

        #[test]
        fn zero_config_transform_equals_clean(
            seed in 0u64..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = Sequential::new();
            net.push(Dense::new(4, 6, Activation::Relu, &mut rng));
            net.push(Dense::new(6, 2, Activation::Identity, &mut rng));
            let mut arden = Arden::from_pretrained(
                net,
                ArdenConfig { split_at: 1, nullification_rate: 0.0, noise_sigma: 0.0, clip_norm: 1e9 },
            );
            let x = Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.4);
            let clean = arden.transform_clean(&x);
            let perturbed = arden.transform(&x, &mut rng);
            prop_assert!(perturbed.approx_eq(&clean, 1e-6));
        }
    }
}
