//! Split inference over a faulty radio: ARDEN's upload ridden over an
//! `mdl-net` [`Link`], with retries, timeouts and a graceful on-device
//! fallback when the cloud is unreachable.
//!
//! The Fig. 3 pipeline assumes the perturbed representation always reaches
//! the cloud. Real mobile links drop out mid-inference; this module makes
//! the degradation explicit: each inference either completes over the link
//! (possibly after retries) or falls back to finishing the *whole* forward
//! pass on the device — correct but at full local compute cost, and with
//! zero bytes leaving the device.

use crate::arden::Arden;
use mdl_net::{Direction, Link, NetError, RetryPolicy};
use mdl_tensor::Matrix;
use rand::Rng;

/// How a single batched inference was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The representation reached the cloud; result returned over the link.
    Cloud,
    /// The link failed (even after retries); the device finished the
    /// forward pass locally.
    OnDeviceFallback,
}

/// Outcome of one split inference attempted over a link.
#[derive(Debug, Clone)]
pub struct OffloadOutcome {
    /// Predicted class per example.
    pub predictions: Vec<usize>,
    /// Where the inference completed.
    pub served_by: ServedBy,
    /// Transport error that triggered the fallback, if any.
    pub fallback_cause: Option<NetError>,
    /// Total link attempts across upload and download (0 on pure fallback
    /// after an upload that never got through).
    pub attempts: u32,
    /// Simulated link time spent, including failed attempts and backoff.
    pub link_elapsed_s: f64,
    /// Bytes that actually left the device (0 when the upload never
    /// succeeded).
    pub uploaded_bytes: u64,
}

/// Runs one ARDEN inference for the batch `x` over `link`.
///
/// The perturbed representation is uploaded with `retry`; on success the
/// (8-byte-per-example) class results are downloaded over the same link.
/// Any transport failure — exhausted retries, deadline, partition — falls
/// back to completing the forward pass on the device with the *clean*
/// representation: nothing leaves the device, so no perturbation is needed
/// and the fallback answer is at least as accurate as the cloud path.
pub fn infer_over_link(
    arden: &mut Arden,
    x: &Matrix,
    link: &mut Link,
    retry: &RetryPolicy,
    rng: &mut impl Rng,
) -> OffloadOutcome {
    let up_bytes = arden.representation_bytes() * x.rows() as u64;
    let down_bytes = 8 * x.rows() as u64;

    let rep = arden.transform(x, rng);
    match link.send(up_bytes, Direction::Up, retry) {
        Ok(up) => {
            let predictions = arden.cloud_logits(&rep).argmax_rows();
            // the result ride-back shares the retry budget; a lost result is
            // a lost inference, so it too falls back
            match link.send(down_bytes, Direction::Down, retry) {
                Ok(down) => OffloadOutcome {
                    predictions,
                    served_by: ServedBy::Cloud,
                    fallback_cause: None,
                    attempts: up.attempts + down.attempts,
                    link_elapsed_s: up.elapsed_s + down.elapsed_s,
                    uploaded_bytes: up.bytes,
                },
                Err(err) => fallback(arden, x, err, up.attempts, up.elapsed_s, up.bytes),
            }
        }
        Err(err) => fallback(arden, x, err, 0, link.round_elapsed_s(), 0),
    }
}

fn fallback(
    arden: &mut Arden,
    x: &Matrix,
    cause: NetError,
    attempts: u32,
    link_elapsed_s: f64,
    uploaded_bytes: u64,
) -> OffloadOutcome {
    let rep = arden.transform_clean(x);
    OffloadOutcome {
        predictions: arden.cloud_logits(&rep).argmax_rows(),
        served_by: ServedBy::OnDeviceFallback,
        fallback_cause: Some(cause),
        attempts,
        link_elapsed_s,
        uploaded_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arden::ArdenConfig;
    use mdl_net::{LinkConfig, RoundFate};
    use mdl_nn::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arden(rng: &mut StdRng) -> Arden {
        let mut net = Sequential::new();
        net.push(Dense::new(8, 6, Activation::Relu, rng));
        net.push(Dense::new(6, 3, Activation::Identity, rng));
        Arden::from_pretrained(
            net,
            ArdenConfig { split_at: 1, nullification_rate: 0.0, noise_sigma: 0.0, clip_norm: 1e9 },
        )
    }

    fn batch() -> Matrix {
        Matrix::from_fn(5, 8, |r, c| ((r * 8 + c) as f32).sin())
    }

    #[test]
    fn clean_link_serves_from_cloud() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut arden = arden(&mut rng);
        let mut link = Link::new(LinkConfig::ideal(), 1);
        link.begin_round(RoundFate::healthy(), f64::INFINITY);
        let out =
            infer_over_link(&mut arden, &batch(), &mut link, &RetryPolicy::no_retry(), &mut rng);
        assert_eq!(out.served_by, ServedBy::Cloud);
        assert_eq!(out.predictions.len(), 5);
        assert_eq!(out.uploaded_bytes, arden.representation_bytes() * 5);
        assert!(out.fallback_cause.is_none());
        assert_eq!(out.attempts, 2, "one upload + one download");
    }

    #[test]
    fn dead_link_falls_back_on_device_with_cause() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut arden = arden(&mut rng);
        let mut link = Link::new(LinkConfig::ideal(), 1);
        link.begin_round(RoundFate { partitioned: true, ..RoundFate::healthy() }, 10.0);
        let out =
            infer_over_link(&mut arden, &batch(), &mut link, &RetryPolicy::default(), &mut rng);
        assert_eq!(out.served_by, ServedBy::OnDeviceFallback);
        assert_eq!(out.uploaded_bytes, 0, "nothing leaves the device");
        assert!(matches!(out.fallback_cause, Some(NetError::Unreachable)));
        assert_eq!(out.predictions.len(), 5);
    }

    #[test]
    fn fallback_matches_clean_cloud_answer() {
        // with zero perturbation the two code paths compute the same logits
        let mut rng = StdRng::seed_from_u64(9);
        let mut arden_a = arden(&mut rng);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut arden_b = arden(&mut rng_b);

        let mut up_link = Link::new(LinkConfig::ideal(), 1);
        up_link.begin_round(RoundFate::healthy(), f64::INFINITY);
        let served = infer_over_link(
            &mut arden_a,
            &batch(),
            &mut up_link,
            &RetryPolicy::no_retry(),
            &mut rng,
        );

        let mut down_link = Link::new(LinkConfig::ideal(), 1);
        down_link.begin_round(RoundFate { partitioned: true, ..RoundFate::healthy() }, 10.0);
        let fell_back = infer_over_link(
            &mut arden_b,
            &batch(),
            &mut down_link,
            &RetryPolicy::no_retry(),
            &mut rng_b,
        );
        assert_eq!(served.predictions, fell_back.predictions);
    }
}
