//! Shared scratch arenas for planned execution.
//!
//! An execution plan records every temporary a model run needs at
//! *compile* time, lays them into one flat allocation, and then reuses
//! that allocation for every run — steady-state inference touches the
//! heap zero times. Layout is a two-phase protocol:
//!
//! 1. **Plan**: an [`ArenaBuilder`] hands out [`BufferId`]s via
//!    [`ArenaBuilder::alloc`]; when the planner knows a buffer is dead
//!    (its last reader has been recorded) it calls
//!    [`ArenaBuilder::release`], returning the bytes to a free list so a
//!    later buffer can reuse them. Placement is first-fit over the free
//!    list with coalescing of adjacent blocks; only when nothing fits is
//!    the arena's high-water mark extended.
//! 2. **Run**: [`ArenaBuilder::build`] freezes the layout into an
//!    [`Arena`] — one `Vec` plus the `(offset, len)` span table — and
//!    executors view buffers through [`Arena::slice`] /
//!    [`Arena::slice_mut`] / [`Arena::read_write`].
//!
//! The liveness rule that makes first-fit sound: a [`BufferId`] may only
//! be released once no later-recorded op reads or writes it, so two ids
//! whose lifetimes overlap are never placed on overlapping spans.
//! [`Arena::read_write`] re-checks disjointness at runtime and panics on
//! overlap, so a planner bug surfaces as a loud failure rather than
//! silent corruption.

/// Handle to one buffer laid out in an [`Arena`].
///
/// Ids are plain indices into the span table of the builder that issued
/// them; using an id against an arena built by a *different* builder is
/// a logic error (caught by the span-table bounds check at best).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// Compile-time layout planner: allocates and releases logical buffers,
/// packing them into a single flat span with first-fit reuse.
#[derive(Debug, Default)]
pub struct ArenaBuilder {
    /// `(offset, len)` per issued [`BufferId`], in issue order.
    spans: Vec<(usize, usize)>,
    /// Free blocks `(offset, len)`, kept sorted by offset and coalesced.
    free: Vec<(usize, usize)>,
    /// High-water mark: total elements the built arena will hold.
    len: usize,
}

impl ArenaBuilder {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `len` elements, reusing released space when a free block
    /// fits (first-fit by offset) and extending the arena otherwise.
    /// Zero-length buffers are legal and occupy no space.
    pub fn alloc(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.spans.len());
        if len == 0 {
            self.spans.push((0, 0));
            return id;
        }
        if let Some(pos) = self.free.iter().position(|&(_, flen)| flen >= len) {
            let (off, flen) = self.free[pos];
            if flen == len {
                self.free.remove(pos);
            } else {
                self.free[pos] = (off + len, flen - len);
            }
            self.spans.push((off, len));
            return id;
        }
        let off = self.len;
        self.len += len;
        self.spans.push((off, len));
        id
    }

    /// Returns `id`'s span to the free list (coalescing with adjacent
    /// free blocks). Call only once the planner has recorded the last op
    /// that touches the buffer — the span may be handed to the very next
    /// [`ArenaBuilder::alloc`].
    pub fn release(&mut self, id: BufferId) {
        let (off, len) = self.spans[id.0];
        if len == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(foff, _)| foff < off);
        self.free.insert(pos, (off, len));
        // Coalesce with the successor first, then the predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }

    /// Total elements the built arena will hold (the high-water mark).
    pub fn total(&self) -> usize {
        self.len
    }

    /// Freezes the layout: one zero-initialised flat buffer plus the
    /// span table. The builder can keep allocating afterwards, but spans
    /// issued later are unknown to this arena.
    pub fn build<T: Copy + Default>(&self) -> Arena<T> {
        Arena { data: vec![T::default(); self.len], spans: self.spans.clone() }
    }
}

/// A frozen arena: one flat allocation viewed through [`BufferId`]s.
#[derive(Debug)]
pub struct Arena<T> {
    data: Vec<T>,
    spans: Vec<(usize, usize)>,
}

impl<T: Copy + Default> Arena<T> {
    /// An arena with no buffers (placeholder for unused precisions).
    pub fn empty() -> Self {
        Arena { data: Vec::new(), spans: Vec::new() }
    }

    /// Total elements across all live spans' backing storage.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena holds no storage at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Backing-store size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Read-only view of `id`'s span.
    pub fn slice(&self, id: BufferId) -> &[T] {
        let (off, len) = self.spans[id.0];
        &self.data[off..off + len]
    }

    /// Mutable view of `id`'s span.
    pub fn slice_mut(&mut self, id: BufferId) -> &mut [T] {
        let (off, len) = self.spans[id.0];
        &mut self.data[off..off + len]
    }

    /// Simultaneous read view of `read` and write view of `write`.
    ///
    /// # Panics
    ///
    /// Panics if the two spans overlap — live buffers never should; an
    /// overlap means the planner released a buffer that was still live.
    pub fn read_write(&mut self, read: BufferId, write: BufferId) -> (&[T], &mut [T]) {
        let (roff, rlen) = self.spans[read.0];
        let (woff, wlen) = self.spans[write.0];
        assert!(
            roff + rlen <= woff || woff + wlen <= roff,
            "arena buffers overlap: read {roff}+{rlen} vs write {woff}+{wlen}"
        );
        if roff <= woff {
            let (lo, hi) = self.data.split_at_mut(woff);
            (&lo[roff..roff + rlen], &mut hi[..wlen])
        } else {
            let (lo, hi) = self.data.split_at_mut(roff);
            (&hi[..rlen], &mut lo[woff..woff + wlen])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extends_when_nothing_is_free() {
        let mut b = ArenaBuilder::new();
        let x = b.alloc(4);
        let y = b.alloc(6);
        assert_eq!(b.total(), 10);
        let a: Arena<f32> = b.build();
        assert_eq!(a.slice(x).len(), 4);
        assert_eq!(a.slice(y).len(), 6);
        assert_eq!(a.size_bytes(), 40);
    }

    #[test]
    fn first_fit_reuses_released_spans() {
        let mut b = ArenaBuilder::new();
        let x = b.alloc(8);
        let _y = b.alloc(4);
        b.release(x);
        let z = b.alloc(6); // fits inside x's released 8
        assert_eq!(b.total(), 12, "no growth: z reused x's span");
        let a: Arena<i32> = b.build();
        assert_eq!(a.slice(z).len(), 6);
    }

    #[test]
    fn coalesces_adjacent_free_blocks() {
        let mut b = ArenaBuilder::new();
        let x = b.alloc(4);
        let y = b.alloc(4);
        let _z = b.alloc(2);
        b.release(x);
        b.release(y); // coalesces with x -> one 8-wide block at 0
        let w = b.alloc(8);
        assert_eq!(b.total(), 10, "w fit the coalesced block");
        let a: Arena<i8> = b.build();
        assert_eq!(a.slice(w).len(), 8);
    }

    #[test]
    fn read_write_views_are_disjoint() {
        let mut b = ArenaBuilder::new();
        let x = b.alloc(3);
        let y = b.alloc(2);
        let mut a: Arena<f32> = b.build();
        a.slice_mut(x).copy_from_slice(&[1.0, 2.0, 3.0]);
        let (r, w) = a.read_write(x, y);
        assert_eq!(r, &[1.0, 2.0, 3.0]);
        w.copy_from_slice(&[9.0, 8.0]);
        assert_eq!(a.slice(y), &[9.0, 8.0]);
        // and the reversed order works too
        let (r2, _w2) = a.read_write(y, x);
        assert_eq!(r2, &[9.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn read_write_panics_on_overlap() {
        let mut b = ArenaBuilder::new();
        let x = b.alloc(4);
        b.release(x);
        let y = b.alloc(4); // same span as x — overlapping on purpose
        let mut a: Arena<f32> = b.build();
        let _ = a.read_write(x, y);
    }

    #[test]
    fn zero_length_buffers_take_no_space() {
        let mut b = ArenaBuilder::new();
        let z = b.alloc(0);
        assert_eq!(b.total(), 0);
        b.release(z);
        let a: Arena<f32> = b.build();
        assert!(a.is_empty());
        assert_eq!(a.slice(z).len(), 0);
    }
}
