//! Radix-2 complex FFT and circular convolution.
//!
//! Powers the block-circulant layers of CirCNN (paper reference [14]): a
//! circulant matrix–vector product of size `n` costs `O(n log n)` via the
//! convolution theorem instead of `O(n²)`.

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(buf: &mut [Complex]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT (includes the `1/n` normalisation).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft(buf: &mut [Complex]) {
    fft_dir(buf, true);
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
}

fn fft_dir(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Circular convolution of two equal-length real signals via FFT.
///
/// The length must be a power of two (pad beforehand if needed).
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn circular_convolve(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "circular convolution needs equal lengths");
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    fft(&mut fa);
    fft(&mut fb);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = *x * *y;
    }
    ifft(&mut fa);
    fa.iter().map(|c| c.re as f32).collect()
}

/// Multiplies the circulant matrix defined by first column `c` with vector `x`.
///
/// `circ(c)[i][j] = c[(i - j) mod n]`, so `circ(c) · x` equals the circular
/// convolution `c ⊛ x`.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn circulant_matvec(c: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(c.len(), x.len(), "circulant product needs equal lengths");
    circular_convolve(c, x)
}

/// Dense reference implementation of a circulant matrix–vector product.
///
/// Used in tests and benchmarks as the `O(n²)` baseline for
/// [`circulant_matvec`].
pub fn circulant_matvec_dense(c: &[f32], x: &[f32]) -> Vec<f32> {
    assert_eq!(c.len(), x.len(), "circulant product needs equal lengths");
    let n = c.len();
    (0..n)
        .map(|i| {
            let mut acc = 0.0f64;
            for j in 0..n {
                acc += c[(i + n - j) % n] as f64 * x[j] as f64;
            }
            acc as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b.iter()).all(|(&x, &y)| (x - y).abs() <= tol)
    }

    #[test]
    fn fft_ifft_round_trip() {
        let orig: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos())).collect();
        let mut buf = orig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (o, r) in orig.iter().zip(buf.iter()) {
            assert!((o.re - r.re).abs() < 1e-10 && (o.im - r.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 6];
        fft(&mut buf);
    }

    #[test]
    fn convolution_matches_direct() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -1.0, 0.25, 2.0];
        let fast = circular_convolve(&a, &b);
        // direct circular convolution
        let n = 4;
        let mut direct = vec![0.0f32; n];
        for (i, d) in direct.iter_mut().enumerate() {
            for j in 0..n {
                *d += a[j] * b[(i + n - j) % n];
            }
        }
        assert!(approx(&fast, &direct, 1e-4), "{fast:?} vs {direct:?}");
    }

    #[test]
    fn circulant_fast_equals_dense() {
        let c = [0.2, -0.5, 1.0, 0.3, -0.1, 0.7, 0.0, 0.9];
        let x = [1.0, 0.0, -1.0, 2.0, 0.5, -0.5, 0.25, 3.0];
        let fast = circulant_matvec(&c, &x);
        let dense = circulant_matvec_dense(&c, &x);
        assert!(approx(&fast, &dense, 1e-4), "{fast:?} vs {dense:?}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert_eq!((p.re, p.im), (5.0, 5.0));
        assert_eq!(a.conj().im, -2.0);
        let s = a + b - b;
        assert_eq!((s.re, s.im), (1.0, 2.0));
    }
}
