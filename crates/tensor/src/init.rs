//! Random matrix initialisation.
//!
//! All stochastic code in the workspace threads an explicit [`rand::Rng`] so
//! experiments are reproducible from a single seed.

use crate::Matrix;
use rand::Rng;

/// Weight-initialisation schemes for neural-network layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Uniform on `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the samples.
        std: f32,
    },
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    Xavier,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`; suited to ReLU stacks.
    He,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a `rows × cols` matrix where `rows` is treated as `fan_in`
    /// and `cols` as `fan_out`.
    pub fn sample(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        match self {
            Init::Uniform { limit } => {
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Init::Normal { std } => Matrix::from_fn(rows, cols, |_, _| gaussian(rng) * std),
            Init::Xavier => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Init::He => {
                let std = (2.0 / rows.max(1) as f32).sqrt();
                Matrix::from_fn(rows, cols, |_, _| gaussian(rng) * std)
            }
            Init::Zeros => Matrix::zeros(rows, cols),
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
///
/// Kept local so the workspace does not depend on `rand_distr`.
pub fn gaussian(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills a buffer with i.i.d. Gaussian noise of the given standard deviation.
pub fn gaussian_noise(len: usize, std: f64, rng: &mut impl Rng) -> Vec<f32> {
    (0..len).map(|_| gaussian(rng) * std as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Init::Xavier.sample(64, 32, &mut rng);
        let limit = (6.0 / 96.0f32).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn he_std_close_to_expected() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Init::He.sample(512, 512, &mut rng);
        let std =
            (m.as_slice().iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / m.len() as f64).sqrt();
        let expected = (2.0f64 / 512.0).sqrt();
        assert!((std - expected).abs() / expected < 0.1, "std={std} expected≈{expected}");
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(Init::Zeros.sample(3, 3, &mut rng).sum(), 0.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::Xavier.sample(4, 4, &mut StdRng::seed_from_u64(42));
        let b = Init::Xavier.sample(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
