//! The GEMM kernel layer: cache-blocked, panel-packed, register-tiled
//! `f32` matrix multiplication, parallelized over output row panels.
//!
//! Every matrix product in the workspace — `Matrix::matmul`, the `_tn`/
//! `_nt` transpose variants and all `_into`/`_acc` forms — funnels through
//! [`gemm`], the single dispatch point of this module.
//!
//! # Blocking scheme
//!
//! The kernel follows the classic panel-packing decomposition:
//!
//! - **B packing**: the right-hand operand is repacked once per call into
//!   column panels of [`NR`] contiguous lanes, grouped by k-blocks of
//!   [`KC`] so the microkernel streams it linearly.
//! - **A packing**: each [`MR`]-row panel of the left operand is packed
//!   k-major (`MR` values per k) so one panel stays L1-resident while the
//!   microkernel sweeps all column panels.
//! - **Microkernel**: an `MR × NR` register tile accumulates over one
//!   k-block, then spills to the output; the next k-block reloads the
//!   partial sums and continues.
//!
//! Transposition is handled at *pack time* — the packed panel layout is
//! identical for all four `op(A)·op(B)` combinations, so the blocked loop
//! nest and microkernel are shared by `matmul`, `matmul_tn` and
//! `matmul_nt`.
//!
//! # Determinism contract
//!
//! For every output element, partial products are accumulated in strictly
//! ascending `k` order into a single accumulator (the register tile is
//! reloaded from the output between k-blocks, which is associatively
//! identical to one uninterrupted loop). Work is partitioned over output
//! row panels only, and the arithmetic performed for a panel is a pure
//! function of the operand shapes and values — never of the thread count
//! or partition. Results are therefore **bit-identical** for any
//! `threads ∈ {1, 2, …}` and bit-identical to the naive reference kernel
//! [`gemm_naive`]. The `exp_faults` bit-reproducibility assertions and the
//! fabric tests rely on this.
//!
//! One carve-out: the small path skips multiplications by exactly-zero A
//! elements (the ReLU-sparsity shortcut inherited from the pre-kernel
//! loops). A skipped contribution is exactly `+0.0`, so this is
//! bit-transparent for finite operands except signed-zero accumulators;
//! the path taken depends only on the operand *shapes*, so any given call
//! site remains bit-reproducible run to run and across thread counts.
//!
//! # Threading model
//!
//! Row panels are split into contiguous chunks, one per worker, spawned
//! on vendored crossbeam scoped threads. The worker count comes from
//! [`threads`] (the `MDL_THREADS` environment variable, defaulting to the
//! machine's available parallelism) and can be overridden at runtime with
//! [`set_threads`]. Products smaller than a fixed flop threshold, and all
//! skinny products below `SMALL_M` rows — gemv RNN timesteps and
//! micro-batched inference, where packing B would dominate — stay on the
//! calling thread with no packing and no heap allocation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

#[path = "kernel_i8.rs"]
pub mod int8;
#[path = "kernel_profile.rs"]
pub mod profile;

/// Microkernel row tile: output rows computed together per panel.
pub const MR: usize = 4;
/// Microkernel column tile: contiguous output lanes per panel.
pub const NR: usize = 16;
/// k-block size: one `MR × KC` A-panel (4 KiB) stays L1-resident while
/// the microkernel sweeps the column panels of the same k-block.
const KC: usize = 256;

/// Products with fewer multiply–accumulates than this run on the calling
/// thread without packing (the gemv/small-matrix fast path).
const SMALL_MACS: usize = 8 * 1024;
/// Products with fewer rows than this also take the small path: packing
/// all of B costs `k·n` writes amortized over only `m / MR` panel sweeps,
/// which measures slower than streaming B until roughly this many rows
/// (micro-batched inference is the m ≤ 8 extreme of this regime).
const SMALL_M: usize = 32;
/// Products with fewer multiply–accumulates than this are never threaded;
/// below it, spawn overhead dominates any speedup.
const PAR_MIN_MACS: usize = 1 << 20;

/// A concretely-typed `None` for the generic `epi` parameter of
/// [`gemm_bias_act`]: unfused call sites pass this so type inference has
/// an epilogue type to name (the function pointer is never called).
pub const NO_EPI: Option<&fn(f32) -> f32> = None;

/// Whether an operand participates as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the operand transposed (handled at pack time, never
    /// materialised).
    T,
}

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The kernel's worker-thread count.
///
/// Resolved once from the `MDL_THREADS` environment variable (values `< 1`
/// are ignored), falling back to the machine's available parallelism;
/// afterwards it is whatever the last [`set_threads`] call installed.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = std::env::var("MDL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the worker-thread count (clamped to at least 1).
///
/// Changing the count never changes results — see the determinism
/// contract in the module docs — only how row panels are partitioned.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

thread_local! {
    /// Reused packing buffers (B panels, A panel) so steady-state calls
    /// from a training loop allocate nothing.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[inline(always)]
fn a_at(a: &[f32], ta: Trans, m: usize, k: usize, i: usize, kk: usize) -> f32 {
    match ta {
        Trans::N => {
            debug_assert!(i < m);
            a[i * k + kk]
        }
        Trans::T => {
            let _ = m;
            a[kk * m + i]
        }
    }
}

#[inline(always)]
fn b_at(b: &[f32], tb: Trans, k: usize, n: usize, kk: usize, j: usize) -> f32 {
    match tb {
        Trans::N => {
            let _ = k;
            b[kk * n + j]
        }
        Trans::T => b[j * k + kk],
    }
}

/// Computes `out = op(A)·op(B)` (or `out += …` when `acc` is true) where
/// `op(A)` is `m × k` and `op(B)` is `k × n`, all row-major slices.
///
/// `A` is stored `m × k` for [`Trans::N`] and `k × m` for [`Trans::T`];
/// `B` is stored `k × n` for [`Trans::N`] and `n × k` for [`Trans::T`].
/// This is the single dispatch point behind every `Matrix` product.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: the arity is the interface
pub fn gemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "A buffer length mismatch");
    assert_eq!(b.len(), k * n, "B buffer length mismatch");
    assert_eq!(out.len(), m * n, "output buffer length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    let profiling = profile::is_enabled();
    let t0 = if profiling { profile::clock_now_ns() } else { 0 };
    let macs = m * n * k;
    if macs <= SMALL_MACS || m < SMALL_M {
        gemm_small(ta, tb, m, n, k, a, b, out, acc, NO_EPI);
    } else {
        gemm_blocked(ta, tb, m, n, k, a, b, out, acc, NO_EPI);
    }
    if profiling {
        profile::tally(ta, tb, m, n, k, profile::clock_now_ns().saturating_sub(t0));
    }
}

/// Fused `out = epi(A·B + bias)` for row-major `A (m × k)`, `B (k × n)`
/// and a per-column `bias` broadcast over rows.
///
/// The bias *seeds* each output row before accumulation — the exact
/// protocol of `Matrix::matmul_bias_into` — and the optional epilogue
/// (the activation) is applied to each row right after its accumulation
/// completes, replacing the separate `map_mut` sweep of the dynamic
/// path. Both choices keep the result **bit-identical** to the unfused
/// `matmul_bias_into` + elementwise-activation sequence: the dispatch
/// between the small and blocked paths depends only on the shapes (the
/// same rule as [`gemm`]), the accumulation order per element is
/// unchanged, and the epilogue touches each element exactly once after
/// its final partial product.
///
/// The epilogue is a generic bound, not a trait object, so each call
/// site monomorphizes to a direct (inlinable, vectorizable) call — an
/// indirect call per output element would cost more than the saved
/// memory pass. Unfused callers pass [`NO_EPI`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)] // BLAS-style signature, mirrors `gemm`
pub fn gemm_bias_act<E: Fn(f32) -> f32 + Sync>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    epi: Option<&E>,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A buffer length mismatch");
    assert_eq!(b.len(), k * n, "B buffer length mismatch");
    assert_eq!(bias.len(), n, "bias length mismatch");
    assert_eq!(out.len(), m * n, "output buffer length mismatch");
    for row in out.chunks_exact_mut(n.max(1)) {
        row.copy_from_slice(bias);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if let Some(f) = epi {
            for v in out.iter_mut() {
                *v = f(*v);
            }
        }
        return;
    }
    let profiling = profile::is_enabled();
    let t0 = if profiling { profile::clock_now_ns() } else { 0 };
    let macs = m * n * k;
    if macs <= SMALL_MACS || m < SMALL_M {
        gemm_small(Trans::N, Trans::N, m, n, k, a, b, out, true, epi);
    } else {
        gemm_blocked(Trans::N, Trans::N, m, n, k, a, b, out, true, epi);
    }
    if profiling {
        profile::tally(Trans::N, Trans::N, m, n, k, profile::clock_now_ns().saturating_sub(t0));
    }
}

/// The naive reference kernel: a plain triple loop with a single
/// accumulator per output element, ascending in `k`.
///
/// Property tests and the `exp_kernels` experiment compare the blocked
/// kernel against this; it intentionally mirrors the pre-kernel-layer
/// `Matrix::matmul` loops.
#[allow(clippy::too_many_arguments)] // mirrors `gemm` so the two are drop-in comparable
pub fn gemm_naive(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    assert_eq!(a.len(), m * k, "A buffer length mismatch");
    assert_eq!(b.len(), k * n, "B buffer length mismatch");
    assert_eq!(out.len(), m * n, "output buffer length mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = if acc { out[i * n + j] } else { 0.0 };
            for kk in 0..k {
                s += a_at(a, ta, m, k, i, kk) * b_at(b, tb, k, n, kk, j);
            }
            out[i * n + j] = s;
        }
    }
}

/// Allocation-free path for single rows and tiny products: row-major
/// traversal with the same ascending-k accumulation order as the blocked
/// kernel, so the dispatch choice never changes results. A fused
/// epilogue, when given, runs on each row as soon as it completes.
#[allow(clippy::too_many_arguments)]
fn gemm_small<E: Fn(f32) -> f32 + Sync>(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
    epi: Option<&E>,
) {
    if !acc {
        out.fill(0.0);
    }
    if tb == Trans::N {
        // axpy form: the inner loop is contiguous in both B and out.
        // Zero A elements are skipped — on ReLU-sparse activations (the
        // micro-batched inference hot path) this roughly halves the work.
        // A zero contribution is exactly `+0.0` per lane, so the skip is
        // bit-transparent except for non-finite B or signed-zero
        // accumulators (`-0.0 + 0.0` would round to `+0.0`).
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let av = a_at(a, ta, m, k, i, kk);
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        if let Some(f) = epi {
            for v in out[..m * n].iter_mut() {
                *v = f(*v);
            }
        }
    } else {
        // B transposed: dot products over contiguous B rows.
        for i in 0..m {
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut s = out[i * n + j];
                match ta {
                    Trans::N => {
                        let a_row = &a[i * k..(i + 1) * k];
                        for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                            s += av * bv;
                        }
                    }
                    Trans::T => {
                        for (kk, &bv) in b_row.iter().enumerate() {
                            s += a[kk * m + i] * bv;
                        }
                    }
                }
                out[i * n + j] = s;
            }
        }
        if let Some(f) = epi {
            for v in out[..m * n].iter_mut() {
                *v = f(*v);
            }
        }
    }
}

/// Packs `op(B)` into `[k-block][column panel][k][NR]` order, zero-padding
/// the last panel to `NR` lanes.
fn pack_b(tb: Trans, k: usize, n: usize, b: &[f32], pb: &mut Vec<f32>) {
    let npan = n.div_ceil(NR);
    pb.clear();
    pb.resize(k * npan * NR, 0.0);
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let block_base = pc * npan * NR;
        for jp in 0..npan {
            let j0 = jp * NR;
            let lanes = NR.min(n - j0);
            let panel = &mut pb[block_base + jp * kc * NR..block_base + (jp + 1) * kc * NR];
            for kk in 0..kc {
                let dst = &mut panel[kk * NR..kk * NR + NR];
                for (jj, d) in dst.iter_mut().enumerate().take(lanes) {
                    *d = b_at(b, tb, k, n, pc + kk, j0 + jj);
                }
            }
        }
        pc += kc;
    }
}

/// Packs one `MR`-row panel of `op(A)` k-major (`MR` values per k),
/// zero-padding missing rows.
fn pack_a_panel(ta: Trans, m: usize, k: usize, a: &[f32], i0: usize, ap: &mut [f32]) {
    let rows = MR.min(m - i0);
    for kk in 0..k {
        let dst = &mut ap[kk * MR..kk * MR + MR];
        for (ii, d) in dst.iter_mut().enumerate() {
            *d = if ii < rows { a_at(a, ta, m, k, i0 + ii, kk) } else { 0.0 };
        }
    }
}

/// Register-tiled inner kernel: accumulates one `MR × NR` tile over `kc`
/// steps, loading prior partial sums from `c` unless `first` clears them.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel(
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    c: &mut [f32],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    first: bool,
) {
    let mut tile = [[0.0f32; NR]; MR];
    if !first {
        for (r, row) in tile.iter_mut().enumerate().take(rows) {
            let src = &c[r * n + j0..r * n + j0 + cols];
            row[..cols].copy_from_slice(src);
        }
    }
    for kk in 0..kc {
        let av = &ap[kk * MR..kk * MR + MR];
        let bv = &bp[kk * NR..kk * NR + NR];
        for (r, row) in tile.iter_mut().enumerate() {
            let ar = av[r];
            for (t, &bb) in row.iter_mut().zip(bv.iter()) {
                *t += ar * bb;
            }
        }
    }
    for (r, row) in tile.iter().enumerate().take(rows) {
        let dst = &mut c[r * n + j0..r * n + j0 + cols];
        dst.copy_from_slice(&row[..cols]);
    }
}

/// Runs the blocked loop nest for row panels `[p_lo, p_hi)` of the output,
/// where `c` starts at row `p_lo * MR` of the full output matrix. A fused
/// epilogue, when given, runs on each row panel right after its last
/// k-block spills — while the panel is still cache-hot.
#[allow(clippy::too_many_arguments)]
fn run_row_panels<E: Fn(f32) -> f32 + Sync>(
    ta: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    pb: &[f32],
    c: &mut [f32],
    p_lo: usize,
    p_hi: usize,
    acc: bool,
    ap: &mut Vec<f32>,
    epi: Option<&E>,
) {
    let npan = n.div_ceil(NR);
    ap.clear();
    ap.resize(k * MR, 0.0);
    for p in p_lo..p_hi {
        let i0 = p * MR;
        let rows = MR.min(m - i0);
        pack_a_panel(ta, m, k, a, i0, ap);
        let c_panel = &mut c[(i0 - p_lo * MR) * n..];
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let block_base = pc * npan * NR;
            for jp in 0..npan {
                let j0 = jp * NR;
                let cols = NR.min(n - j0);
                microkernel(
                    &ap[pc * MR..(pc + kc) * MR],
                    &pb[block_base + jp * kc * NR..block_base + (jp + 1) * kc * NR],
                    kc,
                    c_panel,
                    n,
                    j0,
                    rows,
                    cols,
                    pc == 0 && !acc,
                );
            }
            pc += kc;
        }
        if let Some(f) = epi {
            for v in c_panel[..rows * n].iter_mut() {
                *v = f(*v);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_blocked<E: Fn(f32) -> f32 + Sync>(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
    epi: Option<&E>,
) {
    let panels = m.div_ceil(MR);
    let nt = if m * n * k < PAR_MIN_MACS { 1 } else { threads().min(panels) };
    PACK.with(|bufs| {
        let (pb, ap) = &mut *bufs.borrow_mut();
        pack_b(tb, k, n, b, pb);
        if nt <= 1 {
            run_row_panels(ta, m, n, k, a, pb, out, 0, panels, acc, ap, epi);
            return;
        }
        // Contiguous panel chunks -> contiguous, disjoint row ranges of
        // the output; the chunk boundaries never influence the arithmetic
        // performed for a panel, so any split gives identical bits.
        let per = panels.div_ceil(nt);
        let pb_ref: &[f32] = pb;
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [f32] = out;
            let mut row0 = 0usize;
            for t in 0..nt {
                let p_lo = t * per;
                let p_hi = ((t + 1) * per).min(panels);
                if p_lo >= p_hi {
                    break;
                }
                let rows_end = (p_hi * MR).min(m);
                let (mine, tail) = rest.split_at_mut((rows_end - row0) * n);
                rest = tail;
                row0 = rows_end;
                scope.spawn(move |_| {
                    let mut ap = Vec::new();
                    run_row_panels(ta, m, n, k, a, pb_ref, mine, p_lo, p_hi, acc, &mut ap, epi);
                });
            }
        })
        .expect("gemm worker scope");
    });
}

#[cfg(test)]
pub(crate) static TEST_THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, n: usize, seed: u64) -> Vec<f32> {
        // deterministic, sign-varied, non-trivial mantissas
        (0..m * n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn check_all_variants(m: usize, n: usize, k: usize) {
        let a_n = fill(m, k, 1);
        let b_n = fill(k, n, 2);
        let a_t = fill(k, m, 3); // stored k×m, used transposed
        let b_t = fill(n, k, 4); // stored n×k, used transposed
        for (ta, tb, a, b) in [
            (Trans::N, Trans::N, &a_n, &b_n),
            (Trans::T, Trans::N, &a_t, &b_n),
            (Trans::N, Trans::T, &a_n, &b_t),
            (Trans::T, Trans::T, &a_t, &b_t),
        ] {
            let mut fast = vec![f32::NAN; m * n];
            let mut slow = vec![f32::NAN; m * n];
            gemm(ta, tb, m, n, k, a, b, &mut fast, false);
            gemm_naive(ta, tb, m, n, k, a, b, &mut slow, false);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "blocked != naive for {m}x{n}x{k} ta={ta:?} tb={tb:?}"
            );
            // accumulate mode continues from prior contents
            let mut acc_fast = fill(m, n, 9);
            let mut acc_slow = acc_fast.clone();
            gemm(ta, tb, m, n, k, a, b, &mut acc_fast, true);
            gemm_naive(ta, tb, m, n, k, a, b, &mut acc_slow, true);
            assert_eq!(
                acc_fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                acc_slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "acc blocked != naive for {m}x{n}x{k} ta={ta:?} tb={tb:?}"
            );
        }
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        // 1×1, row/col vectors, tile boundaries ±1 and ragged interiors
        for (m, n, k) in [
            (1, 1, 1),
            (1, 7, 5),
            (9, 1, 3),
            (1, 1, 64),
            (MR, NR, 8),
            (MR + 1, NR + 1, 9),
            (MR - 1, NR - 1, 7),
            (2 * MR, 2 * NR, 33),
            (17, 33, 29),
            (40, 24, 64),
            (SMALL_M - 1, 40, 40),
            (SMALL_M, 40, 40),
            (65, 47, 101),
        ] {
            check_all_variants(m, n, k);
        }
    }

    /// The small path's zero-skip must stay bit-transparent on
    /// ReLU-style sparse inputs (exact `+0.0` activations).
    #[test]
    fn zero_skip_matches_naive_on_sparse_inputs() {
        let (m, n, k) = (8, 96, 96);
        let a: Vec<f32> = fill(m, k, 21).iter().map(|&v| v.max(0.0)).collect();
        let b = fill(k, n, 22);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        gemm(Trans::N, Trans::N, m, n, k, &a, &b, &mut fast, false);
        gemm_naive(Trans::N, Trans::N, m, n, k, &a, &b, &mut slow, false);
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    /// The fused bias-seed + epilogue entry must be bit-identical to the
    /// dynamic three-step sequence (seed bias rows, accumulate, map) on
    /// both the small and the blocked/threaded dispatch paths.
    #[test]
    fn fused_bias_act_matches_unfused_bitwise() {
        let relu = |v: f32| v.max(0.0);
        for (m, n, k) in [(1, 5, 3), (8, 96, 96), (31, 48, 64), (130, 70, 130)] {
            let a = fill(m, k, 31);
            let b = fill(k, n, 32);
            let bias = fill(1, n, 33);
            let mut unfused = vec![0.0f32; m * n];
            for row in unfused.chunks_exact_mut(n) {
                row.copy_from_slice(&bias);
            }
            gemm(Trans::N, Trans::N, m, n, k, &a, &b, &mut unfused, true);
            for v in unfused.iter_mut() {
                *v = relu(*v);
            }
            let mut fused = vec![f32::NAN; m * n];
            gemm_bias_act(m, n, k, &a, &b, &bias, Some(&relu), &mut fused);
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                unfused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "fused != unfused at {m}x{n}x{k}"
            );
            // without an epilogue it is exactly matmul_bias_into
            let mut plain = vec![0.0f32; m * n];
            for row in plain.chunks_exact_mut(n) {
                row.copy_from_slice(&bias);
            }
            gemm(Trans::N, Trans::N, m, n, k, &a, &b, &mut plain, true);
            let mut fused_plain = vec![f32::NAN; m * n];
            gemm_bias_act(m, n, k, &a, &b, &bias, NO_EPI, &mut fused_plain);
            assert_eq!(
                fused_plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn fused_bias_act_handles_degenerate_k() {
        let bias = [1.0f32, -2.0];
        let mut out = [f32::NAN; 4];
        gemm_bias_act(2, 2, 0, &[], &[], &bias, Some(&|v: f32| v.max(0.0)), &mut out);
        assert_eq!(out, [1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn k_zero_clears_or_preserves() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut out = vec![3.0f32; 6];
        gemm(Trans::N, Trans::N, 2, 3, 0, &a, &b, &mut out, false);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![3.0f32; 6];
        gemm(Trans::N, Trans::N, 2, 3, 0, &a, &b, &mut out, true);
        assert_eq!(out, vec![3.0; 6]);
    }

    #[test]
    fn empty_output_is_a_noop() {
        let a = vec![1.0f32; 4];
        let b: Vec<f32> = vec![];
        let mut out: Vec<f32> = vec![];
        gemm(Trans::N, Trans::N, 0, 3, 0, &[], &b, &mut out, false);
        gemm(Trans::N, Trans::N, 2, 0, 2, &a, &[], &mut out, false);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let _guard = TEST_THREADS_LOCK.lock().unwrap();
        let before = threads();
        // large enough to cross PAR_MIN_MACS and actually spawn workers
        let (m, n, k) = (130, 70, 130);
        let a = fill(m, k, 11);
        let b = fill(k, n, 12);
        let mut reference = vec![0.0f32; m * n];
        set_threads(1);
        gemm(Trans::N, Trans::N, m, n, k, &a, &b, &mut reference, false);
        for nt in [2, 3, 8] {
            set_threads(nt);
            let mut out = vec![0.0f32; m * n];
            gemm(Trans::N, Trans::N, m, n, k, &a, &b, &mut out, false);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={nt} diverged from threads=1"
            );
        }
        set_threads(before);
    }

    #[test]
    fn threads_defaults_to_at_least_one() {
        assert!(threads() >= 1);
    }
}
