//! Int8 GEMM microkernel: explicit `std::arch` x86_64 SIMD with a
//! pure-scalar fallback that is **bit-identical** to every SIMD path.
//!
//! # Layout contract
//!
//! [`gemm_i8`] computes `out[i][j] = Σ_t a[i][t] · bt[j][t]` with `a` an
//! `m × k` row-major `i8` matrix and `bt` the **transposed** right-hand
//! operand (`n × k` row-major, one row per output channel). Storing the
//! weights transposed makes every output element a dot product of two
//! contiguous byte rows, which is the whole kernel: no packing, no
//! strided loads, just streaming dot products. Accumulation is `i32`.
//!
//! # Determinism contract
//!
//! Every path — scalar, SSE2, AVX2, AVX-512 — produces bit-identical
//! output unconditionally. `i8 × i8` products are exact in `i16`/`i32`,
//! and the `i32` accumulation can never overflow for any `k` up to
//! [`MAX_K`] (asserted), so addition is performed on exact integers where
//! it is fully associative and commutative: the SIMD lane split and
//! horizontal reduction are mathematically — hence bitwise — equal to the
//! scalar ascending-`k` loop. This mirrors the f32 kernel's determinism
//! discipline (see [`super`]) without needing its ordering carve-outs.
//!
//! # Dispatch rules
//!
//! The widest available instruction set wins, detected once per call via
//! `is_x86_feature_detected!`: AVX-512BW → AVX2 → SSE2 (the x86_64
//! baseline) → scalar (non-x86_64). Setting the `MDL_FORCE_SCALAR`
//! environment variable (any value other than empty or `0`), or calling
//! [`set_force_scalar`], pins the scalar path so the fallback can be
//! exercised on SIMD-capable hosts — CI runs the whole suite both ways.

use std::sync::atomic::{AtomicU8, Ordering};

/// Largest supported reduction depth: beyond this an all-`±127` dot
/// product could overflow the `i32` accumulator.
pub const MAX_K: usize = (i32::MAX / (127 * 127)) as usize;

/// 0 = unresolved, 1 = SIMD allowed, 2 = scalar pinned.
static FORCE_SCALAR: AtomicU8 = AtomicU8::new(0);

/// Whether the scalar fallback is pinned.
///
/// Resolved once from the `MDL_FORCE_SCALAR` environment variable (set
/// and not `0` ⇒ pinned); afterwards it is whatever the last
/// [`set_force_scalar`] call installed. Pinning never changes results —
/// see the module's determinism contract — only which instructions run.
pub fn force_scalar() -> bool {
    match FORCE_SCALAR.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("MDL_FORCE_SCALAR")
                .map(|v| !v.trim().is_empty() && v.trim() != "0")
                .unwrap_or(false);
            FORCE_SCALAR.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the `MDL_FORCE_SCALAR` resolution at runtime (used by the
/// property tests to exercise both paths in one process).
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The instruction set [`gemm_i8`] dispatches to right now:
/// `"avx512bw"`, `"avx2"`, `"sse2"` or `"scalar"`.
pub fn simd_level() -> &'static str {
    if force_scalar() {
        return "scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512bw") {
            "avx512bw"
        } else if is_x86_feature_detected!("avx2") {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

fn check_shapes(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &[i32]) {
    assert!(k <= MAX_K, "int8 GEMM depth {k} could overflow i32 (max {MAX_K})");
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(bt.len(), n * k, "Bᵀ must be n×k");
    assert_eq!(out.len(), m * n, "out must be m×n");
}

/// Int8 GEMM against a transposed right-hand side:
/// `out[i·n + j] {=, +=} Σ_t a[i·k + t] · bt[j·k + t]` in `i32`.
///
/// `acc = false` overwrites `out`, `acc = true` accumulates into it.
/// Dispatches to the widest SIMD path the host supports unless the
/// scalar fallback is pinned (see [`force_scalar`]); all paths are
/// bit-identical.
///
/// # Panics
///
/// Panics on slice/shape mismatches or `k >` [`MAX_K`].
pub fn gemm_i8(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32], acc: bool) {
    check_shapes(m, n, k, a, bt, out);
    if force_scalar() {
        return scalar_loop(m, n, k, a, bt, out, acc);
    }
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: each call is guarded by the matching runtime feature
        // check (SSE2 is unconditionally part of the x86_64 baseline).
        if is_x86_feature_detected!("avx512bw") {
            return unsafe { gemm_avx512(m, n, k, a, bt, out, acc) };
        }
        if is_x86_feature_detected!("avx2") {
            return unsafe { gemm_avx2(m, n, k, a, bt, out, acc) };
        }
        unsafe { gemm_sse2(m, n, k, a, bt, out, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    scalar_loop(m, n, k, a, bt, out, acc)
}

/// Fused-epilogue drive: computes one output row of `i32` accumulators
/// at a time into the caller's `row_acc` scratch (length `n`) and hands
/// each completed row to `drain(i, row_acc)` while it is still
/// cache-hot, instead of materialising the full `m × n` accumulator
/// matrix. This is how planned execution folds the int8 bias-add,
/// dequantize and activation into the accumulator drain with no extra
/// pass over an `m × n` intermediate.
///
/// Each row is produced by the same dispatched kernel as [`gemm_i8`]
/// with `m = 1`, and integer accumulation is exact, so the values handed
/// to `drain` are bit-identical to the corresponding row of a full
/// [`gemm_i8`] call.
///
/// # Panics
///
/// Panics on slice/shape mismatches or `k >` [`MAX_K`].
pub fn gemm_i8_row_drain(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    bt: &[i8],
    row_acc: &mut [i32],
    mut drain: impl FnMut(usize, &mut [i32]),
) {
    assert!(k <= MAX_K, "int8 GEMM depth {k} could overflow i32 (max {MAX_K})");
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(bt.len(), n * k, "Bᵀ must be n×k");
    assert_eq!(row_acc.len(), n, "row scratch must be n wide");
    for i in 0..m {
        gemm_i8(1, n, k, &a[i * k..(i + 1) * k], bt, row_acc, false);
        drain(i, row_acc);
    }
}

/// The pinned scalar path: identical shape contract to [`gemm_i8`],
/// guaranteed to use no SIMD dispatch. Public so the equality tests (and
/// the CI `quantized` job) can compare it against the dispatched path
/// without touching process-global state.
///
/// # Panics
///
/// Panics on slice/shape mismatches or `k >` [`MAX_K`].
pub fn gemm_i8_scalar(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
    acc: bool,
) {
    check_shapes(m, n, k, a, bt, out);
    scalar_loop(m, n, k, a, bt, out, acc);
}

/// Naive triple-loop i32 reference, the ground truth the property tests
/// pin both the scalar and SIMD paths against.
///
/// # Panics
///
/// Panics on slice/shape mismatches or `k >` [`MAX_K`].
pub fn gemm_i8_ref(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32], acc: bool) {
    check_shapes(m, n, k, a, bt, out);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0i32;
            for t in 0..k {
                sum += a[i * k + t] as i32 * bt[j * k + t] as i32;
            }
            let slot = &mut out[i * n + j];
            *slot = if acc { *slot + sum } else { sum };
        }
    }
}

fn scalar_loop(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32], acc: bool) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, slot) in out_row.iter_mut().enumerate() {
            let b_row = &bt[j * k..(j + 1) * k];
            let sum: i32 = a_row.iter().zip(b_row).map(|(&x, &y)| x as i32 * y as i32).sum::<i32>();
            *slot = if acc { *slot + sum } else { sum };
        }
    }
}

/// Column-tile width: one A chunk is sign-extended once and reused
/// against this many Bᵀ rows.
#[cfg(target_arch = "x86_64")]
const JT: usize = 4;

/// Shared SIMD driver: `dot4` produces the four dot products of one A row
/// against a 4-row Bᵀ tile, `dot1` handles the `n % 4` tail rows.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the gemm signature plus the two dot kernels
fn simd_loop(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
    acc: bool,
    dot4: impl Fn(&[i8], [&[i8]; JT]) -> [i32; JT],
    dot1: impl Fn(&[i8], &[i8]) -> i32,
) {
    let n_tiles = n / JT;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for jt in 0..n_tiles {
            let j = jt * JT;
            let tile = [
                &bt[j * k..(j + 1) * k],
                &bt[(j + 1) * k..(j + 2) * k],
                &bt[(j + 2) * k..(j + 3) * k],
                &bt[(j + 3) * k..(j + 4) * k],
            ];
            let sums = dot4(a_row, tile);
            for (slot, sum) in out_row[j..j + JT].iter_mut().zip(sums) {
                *slot = if acc { *slot + sum } else { sum };
            }
        }
        for j in n_tiles * JT..n {
            let sum = dot1(a_row, &bt[j * k..(j + 1) * k]);
            let slot = &mut out_row[j];
            *slot = if acc { *slot + sum } else { sum };
        }
    }
}

/// Scalar tail shared by every SIMD path: the last `k % W` elements.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn tail_dot(a: &[i8], b: &[i8], from: usize) -> i32 {
    a[from..].iter().zip(&b[from..]).map(|(&x, &y)| x as i32 * y as i32).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn gemm_sse2(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32], acc: bool) {
    use std::arch::x86_64::*;
    /// Sign-extends the low/high halves of 16 packed `i8` to two `i16×8`
    /// vectors via the interleave-with-self + arithmetic-shift idiom
    /// (SSE2 has no `cvtepi8`).
    #[inline(always)]
    unsafe fn widen(v: __m128i) -> (__m128i, __m128i) {
        (_mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8), _mm_srai_epi16(_mm_unpackhi_epi8(v, v), 8))
    }
    #[inline(always)]
    unsafe fn sum4(v: __m128i) -> i32 {
        let hi = _mm_add_epi32(v, _mm_shuffle_epi32(v, 0b00_00_11_10));
        let s = _mm_add_epi32(hi, _mm_shuffle_epi32(hi, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }
    let dot4 = |a_row: &[i8], tile: [&[i8]; JT]| -> [i32; JT] {
        let chunks = k / 16;
        let mut accv = [_mm_setzero_si128(); JT];
        for c in 0..chunks {
            let av = _mm_loadu_si128(a_row.as_ptr().add(c * 16) as *const __m128i);
            let (a_lo, a_hi) = widen(av);
            for (accl, b_row) in accv.iter_mut().zip(tile) {
                let bv = _mm_loadu_si128(b_row.as_ptr().add(c * 16) as *const __m128i);
                let (b_lo, b_hi) = widen(bv);
                let p = _mm_add_epi32(_mm_madd_epi16(a_lo, b_lo), _mm_madd_epi16(a_hi, b_hi));
                *accl = _mm_add_epi32(*accl, p);
            }
        }
        let mut sums = [0i32; JT];
        for ((s, accl), b_row) in sums.iter_mut().zip(accv).zip(tile) {
            *s = sum4(accl) + tail_dot(a_row, b_row, chunks * 16);
        }
        sums
    };
    let dot1 = |a_row: &[i8], b_row: &[i8]| -> i32 {
        let chunks = k / 16;
        let mut accv = _mm_setzero_si128();
        for c in 0..chunks {
            let av = _mm_loadu_si128(a_row.as_ptr().add(c * 16) as *const __m128i);
            let bv = _mm_loadu_si128(b_row.as_ptr().add(c * 16) as *const __m128i);
            let (a_lo, a_hi) = widen(av);
            let (b_lo, b_hi) = widen(bv);
            let p = _mm_add_epi32(_mm_madd_epi16(a_lo, b_lo), _mm_madd_epi16(a_hi, b_hi));
            accv = _mm_add_epi32(accv, p);
        }
        sum4(accv) + tail_dot(a_row, b_row, chunks * 16)
    };
    simd_loop(m, n, k, a, bt, out, acc, dot4, dot1);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_avx2(m: usize, n: usize, k: usize, a: &[i8], bt: &[i8], out: &mut [i32], acc: bool) {
    use std::arch::x86_64::*;
    /// Sign-extends 32 packed `i8` to two `i16×16` vectors.
    #[inline(always)]
    unsafe fn widen(v: __m256i) -> (__m256i, __m256i) {
        (
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(v)),
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(v, 1)),
        )
    }
    #[inline(always)]
    unsafe fn sum8(v: __m256i) -> i32 {
        let q = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
        let hi = _mm_add_epi32(q, _mm_shuffle_epi32(q, 0b00_00_11_10));
        let s = _mm_add_epi32(hi, _mm_shuffle_epi32(hi, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }
    let dot4 = |a_row: &[i8], tile: [&[i8]; JT]| -> [i32; JT] {
        let chunks = k / 32;
        let mut accv = [_mm256_setzero_si256(); JT];
        for c in 0..chunks {
            let av = _mm256_loadu_si256(a_row.as_ptr().add(c * 32) as *const __m256i);
            let (a_lo, a_hi) = widen(av);
            for (accl, b_row) in accv.iter_mut().zip(tile) {
                let bv = _mm256_loadu_si256(b_row.as_ptr().add(c * 32) as *const __m256i);
                let (b_lo, b_hi) = widen(bv);
                let p =
                    _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo), _mm256_madd_epi16(a_hi, b_hi));
                *accl = _mm256_add_epi32(*accl, p);
            }
        }
        let mut sums = [0i32; JT];
        for ((s, accl), b_row) in sums.iter_mut().zip(accv).zip(tile) {
            *s = sum8(accl) + tail_dot(a_row, b_row, chunks * 32);
        }
        sums
    };
    let dot1 = |a_row: &[i8], b_row: &[i8]| -> i32 {
        let chunks = k / 32;
        let mut accv = _mm256_setzero_si256();
        for c in 0..chunks {
            let av = _mm256_loadu_si256(a_row.as_ptr().add(c * 32) as *const __m256i);
            let bv = _mm256_loadu_si256(b_row.as_ptr().add(c * 32) as *const __m256i);
            let (a_lo, a_hi) = widen(av);
            let (b_lo, b_hi) = widen(bv);
            let p = _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo), _mm256_madd_epi16(a_hi, b_hi));
            accv = _mm256_add_epi32(accv, p);
        }
        sum8(accv) + tail_dot(a_row, b_row, chunks * 32)
    };
    simd_loop(m, n, k, a, bt, out, acc, dot4, dot1);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn gemm_avx512(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    bt: &[i8],
    out: &mut [i32],
    acc: bool,
) {
    use std::arch::x86_64::*;
    /// Sign-extends 64 packed `i8` to two `i16×32` vectors.
    #[inline(always)]
    unsafe fn widen(v: __m512i) -> (__m512i, __m512i) {
        (
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(v)),
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(v, 1)),
        )
    }
    let dot4 = |a_row: &[i8], tile: [&[i8]; JT]| -> [i32; JT] {
        let chunks = k / 64;
        let mut accv = [_mm512_setzero_si512(); JT];
        for c in 0..chunks {
            let av = _mm512_loadu_si512(a_row.as_ptr().add(c * 64) as *const __m512i);
            let (a_lo, a_hi) = widen(av);
            for (accl, b_row) in accv.iter_mut().zip(tile) {
                let bv = _mm512_loadu_si512(b_row.as_ptr().add(c * 64) as *const __m512i);
                let (b_lo, b_hi) = widen(bv);
                let p =
                    _mm512_add_epi32(_mm512_madd_epi16(a_lo, b_lo), _mm512_madd_epi16(a_hi, b_hi));
                *accl = _mm512_add_epi32(*accl, p);
            }
        }
        let mut sums = [0i32; JT];
        for ((s, accl), b_row) in sums.iter_mut().zip(accv).zip(tile) {
            *s = _mm512_reduce_add_epi32(accl) + tail_dot(a_row, b_row, chunks * 64);
        }
        sums
    };
    let dot1 = |a_row: &[i8], b_row: &[i8]| -> i32 {
        let chunks = k / 64;
        let mut accv = _mm512_setzero_si512();
        for c in 0..chunks {
            let av = _mm512_loadu_si512(a_row.as_ptr().add(c * 64) as *const __m512i);
            let bv = _mm512_loadu_si512(b_row.as_ptr().add(c * 64) as *const __m512i);
            let (a_lo, a_hi) = widen(av);
            let (b_lo, b_hi) = widen(bv);
            let p = _mm512_add_epi32(_mm512_madd_epi16(a_lo, b_lo), _mm512_madd_epi16(a_hi, b_hi));
            accv = _mm512_add_epi32(accv, p);
        }
        _mm512_reduce_add_epi32(accv) + tail_dot(a_row, b_row, chunks * 64)
    };
    simd_loop(m, n, k, a, bt, out, acc, dot4, dot1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<i8> {
        // simple LCG keeps the test free of RNG plumbing
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as i8
            })
            .collect()
    }

    #[test]
    fn dispatched_matches_reference_on_odd_shapes() {
        for &(m, n, k) in
            &[(1, 1, 0), (1, 1, 1), (3, 5, 7), (4, 16, 33), (2, 9, 130), (5, 4, 256), (7, 13, 65)]
        {
            let a = fill(m * k, 11 + k as u64);
            let bt = fill(n * k, 97 + m as u64);
            let mut fast = vec![1i32; m * n];
            let mut slow = vec![2i32; m * n];
            gemm_i8(m, n, k, &a, &bt, &mut fast, false);
            gemm_i8_ref(m, n, k, &a, &bt, &mut slow, false);
            assert_eq!(fast, slow, "dispatched != ref at {m}x{n}x{k}");

            let mut fast_acc = fast.clone();
            let mut slow_acc = slow.clone();
            gemm_i8(m, n, k, &a, &bt, &mut fast_acc, true);
            gemm_i8_ref(m, n, k, &a, &bt, &mut slow_acc, true);
            assert_eq!(fast_acc, slow_acc, "acc mode diverged at {m}x{n}x{k}");
        }
    }

    #[test]
    fn scalar_path_matches_reference() {
        let (m, n, k) = (6, 10, 100);
        let a = fill(m * k, 3);
        let bt = fill(n * k, 4);
        let mut scalar = vec![0i32; m * n];
        let mut reference = vec![0i32; m * n];
        gemm_i8_scalar(m, n, k, &a, &bt, &mut scalar, false);
        gemm_i8_ref(m, n, k, &a, &bt, &mut reference, false);
        assert_eq!(scalar, reference);
    }

    #[test]
    fn row_drain_matches_full_gemm_bitwise() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (4, 16, 33), (7, 13, 65)] {
            let a = fill(m * k, 51 + k as u64);
            let bt = fill(n * k, 77 + m as u64);
            let mut full = vec![0i32; m * n];
            gemm_i8(m, n, k, &a, &bt, &mut full, false);
            let mut row_acc = vec![0i32; n];
            let mut drained = vec![0i32; m * n];
            gemm_i8_row_drain(m, n, k, &a, &bt, &mut row_acc, |i, row| {
                drained[i * n..(i + 1) * n].copy_from_slice(row);
            });
            assert_eq!(drained, full, "drained rows != full gemm at {m}x{n}x{k}");
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        // k rows of ±127 — the worst case the MAX_K bound is sized for
        let k = 1024;
        let a = vec![127i8; k];
        let bt = vec![-127i8; 2 * k];
        let mut out = vec![0i32; 2];
        gemm_i8(1, 2, k, &a, &bt, &mut out, false);
        assert_eq!(out, vec![-127 * 127 * k as i32; 2]);
    }

    #[test]
    fn simd_level_reports_a_known_name() {
        assert!(["avx512bw", "avx2", "sse2", "scalar"].contains(&simd_level()));
    }
}
