//! Per-shape GEMM tallies: calls, time and FLOPs for every distinct
//! `op(A)·op(B)` shape that passes through [`super::gemm`].
//!
//! The collector is a fixed open-addressed table of atomic slots, so the
//! hot path is lock-free and allocation-free: pack the shape into one
//! `u64` key, probe, `fetch_add`. It is disabled by default (one relaxed
//! boolean load per `gemm` call); [`enable`] installs a shared
//! [`Clock`] — a sim clock makes the recorded times a pure function of
//! the simulation (all zero unless the sim advances mid-call), a wall
//! clock gives real timings.
//!
//! State is process-global, like [`super::set_threads`]: tests that
//! enable profiling must serialize on their own lock and call [`reset`].

use mdl_obs::{Clock, MetricsRegistry};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use super::Trans;

/// Distinct shapes tracked before new ones spill into
/// [`GemmProfile::overflow`].
const SLOTS: usize = 128;

struct Slot {
    /// Packed shape key; 0 marks an empty slot (no real shape packs to 0
    /// because `m >= 1` sets a high bit).
    key: AtomicU64,
    calls: AtomicU64,
    ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // template for array init only
const EMPTY_SLOT: Slot =
    Slot { key: AtomicU64::new(0), calls: AtomicU64::new(0), ns: AtomicU64::new(0) };

static ENABLED: AtomicBool = AtomicBool::new(false);
static CLOCK: Mutex<Option<Clock>> = Mutex::new(None);
/// Bumped by [`enable`]/[`disable`] to invalidate per-thread clock caches.
static CLOCK_EPOCH: AtomicU64 = AtomicU64::new(1);
static TABLE: [Slot; SLOTS] = [EMPTY_SLOT; SLOTS];
static OVERFLOW: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(epoch, clock)` cache so the hot path reads the clock without
    /// taking the [`CLOCK`] mutex; refreshed when the epoch moves.
    static CACHED_CLOCK: RefCell<(u64, Option<Clock>)> = const { RefCell::new((0, None)) };
}

/// `op:4 | m:20 | n:20 | k:20`; dimensions above 2^20-1 clamp (tallied
/// together, never miscounted).
fn pack(ta: Trans, tb: Trans, m: usize, n: usize, k: usize) -> u64 {
    const MASK: u64 = (1 << 20) - 1;
    let op = ((ta == Trans::T) as u64) << 1 | (tb == Trans::T) as u64;
    // the +1 on op keeps every real key nonzero even for degenerate shapes
    (op + 1) << 60 | (m as u64).min(MASK) << 40 | (n as u64).min(MASK) << 20 | (k as u64).min(MASK)
}

fn unpack(key: u64) -> (Trans, Trans, usize, usize, usize) {
    const MASK: u64 = (1 << 20) - 1;
    let op = (key >> 60) - 1;
    let t = |b: u64| if b != 0 { Trans::T } else { Trans::N };
    (
        t(op & 2),
        t(op & 1),
        (key >> 40 & MASK) as usize,
        (key >> 20 & MASK) as usize,
        (key & MASK) as usize,
    )
}

/// `true` while tallying is on; `gemm` checks this once per call.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Current reading of the installed clock (0 when none is installed).
///
/// Lock-free on the hot path: each thread caches a clone of the clock
/// keyed by [`CLOCK_EPOCH`] and only takes the mutex after an
/// [`enable`]/[`disable`] transition.
pub fn clock_now_ns() -> u64 {
    let epoch = CLOCK_EPOCH.load(Ordering::Acquire);
    CACHED_CLOCK.with(|c| {
        let mut c = c.borrow_mut();
        if c.0 != epoch {
            *c = (epoch, CLOCK.lock().expect("profile clock poisoned").clone());
        }
        c.1.as_ref().map_or(0, Clock::now_ns)
    })
}

/// Turns tallying on, stamping times from `clock`.
pub fn enable(clock: Clock) {
    *CLOCK.lock().expect("profile clock poisoned") = Some(clock);
    CLOCK_EPOCH.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tallying off (counts are kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    *CLOCK.lock().expect("profile clock poisoned") = None;
    CLOCK_EPOCH.fetch_add(1, Ordering::Release);
}

/// Zeroes every slot and the overflow counter.
pub fn reset() {
    for slot in &TABLE {
        slot.key.store(0, Ordering::Relaxed);
        slot.calls.store(0, Ordering::Relaxed);
        slot.ns.store(0, Ordering::Relaxed);
    }
    OVERFLOW.store(0, Ordering::Relaxed);
}

/// Adds one call of the given shape. Linear probing from a
/// multiplicative hash; when all slots hold other shapes the call lands
/// in the overflow counter instead of being lost.
pub fn tally(ta: Trans, tb: Trans, m: usize, n: usize, k: usize, elapsed_ns: u64) {
    let key = pack(ta, tb, m, n, k);
    let start = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % SLOTS;
    for probe in 0..SLOTS {
        let slot = &TABLE[(start + probe) % SLOTS];
        let seen = slot.key.load(Ordering::Relaxed);
        let claimed = seen == key
            || (seen == 0
                && slot.key.compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed).is_ok());
        if claimed {
            slot.calls.fetch_add(1, Ordering::Relaxed);
            slot.ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            return;
        }
        // another thread may have claimed this slot for our key between
        // the load and the CAS
        if slot.key.load(Ordering::Relaxed) == key {
            slot.calls.fetch_add(1, Ordering::Relaxed);
            slot.ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            return;
        }
    }
    OVERFLOW.fetch_add(1, Ordering::Relaxed);
}

/// The tally of one distinct GEMM shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmTally {
    /// A-operand orientation.
    pub ta: Trans,
    /// B-operand orientation.
    pub tb: Trans,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Contraction length.
    pub k: usize,
    /// Calls with this shape.
    pub calls: u64,
    /// Total time across those calls (by the installed clock).
    pub total_ns: u64,
}

impl GemmTally {
    /// `2·m·n·k` multiply–accumulate FLOPs per call.
    pub fn flops_per_call(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Total FLOPs across all calls.
    pub fn total_flops(&self) -> u64 {
        self.calls * self.flops_per_call()
    }

    /// Achieved GFLOP/s (0 when no time was observed).
    pub fn gflops(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.total_flops() as f64 / self.total_ns as f64
        }
    }

    /// Stable label, e.g. `"nt.128x64x256"`.
    pub fn label(&self) -> String {
        let t = |t: Trans| if t == Trans::T { "t" } else { "n" };
        format!("{}{}.{}x{}x{}", t(self.ta), t(self.tb), self.m, self.n, self.k)
    }
}

/// Occupied tallies sorted by packed key (deterministic order), plus the
/// number of calls that overflowed the table.
pub fn snapshot() -> (Vec<GemmTally>, u64) {
    let mut entries: Vec<(u64, GemmTally)> = TABLE
        .iter()
        .filter_map(|slot| {
            let key = slot.key.load(Ordering::Relaxed);
            if key == 0 {
                return None;
            }
            let (ta, tb, m, n, k) = unpack(key);
            Some((
                key,
                GemmTally {
                    ta,
                    tb,
                    m,
                    n,
                    k,
                    calls: slot.calls.load(Ordering::Relaxed),
                    total_ns: slot.ns.load(Ordering::Relaxed),
                },
            ))
        })
        .collect();
    entries.sort_by_key(|&(key, _)| key);
    (entries.into_iter().map(|(_, t)| t).collect(), OVERFLOW.load(Ordering::Relaxed))
}

/// Publishes the tallies into `registry` under `kernel.gemm.*` — the one
/// sink observability snapshots read. Per-shape counters are
/// `kernel.gemm.<label>.{calls,ns,flops}`; rolled-up totals are
/// `kernel.gemm.{calls,ns,flops,overflow}`.
pub fn export_into(registry: &MetricsRegistry) {
    let (tallies, overflow) = snapshot();
    let (mut calls, mut ns, mut flops) = (0u64, 0u64, 0u64);
    for t in &tallies {
        let label = t.label();
        registry.counter(&format!("kernel.gemm.{label}.calls")).store(t.calls);
        registry.counter(&format!("kernel.gemm.{label}.ns")).store(t.total_ns);
        registry.counter(&format!("kernel.gemm.{label}.flops")).store(t.total_flops());
        calls += t.calls;
        ns += t.total_ns;
        flops += t.total_flops();
    }
    registry.counter("kernel.gemm.calls").store(calls);
    registry.counter("kernel.gemm.ns").store(ns);
    registry.counter("kernel.gemm.flops").store(flops);
    registry.counter("kernel.gemm.overflow").store(overflow);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::gemm;

    /// The tally table is process-global; tests touching it take this.
    static PROFILE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn keys_round_trip_shapes() {
        for (ta, tb, m, n, k) in [
            (Trans::N, Trans::N, 1, 1, 1),
            (Trans::T, Trans::N, 128, 64, 256),
            (Trans::N, Trans::T, 7, 1000, 3),
            (Trans::T, Trans::T, (1 << 20) - 1, 2, 9),
        ] {
            assert_eq!(unpack(pack(ta, tb, m, n, k)), (ta, tb, m, n, k));
            assert_ne!(pack(ta, tb, m, n, k), 0);
        }
    }

    #[test]
    fn tallies_gemm_calls_by_shape() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        reset();
        let clock = Clock::sim();
        enable(clock.clone());
        let a = vec![1.0f32; 6];
        let b = vec![2.0f32; 12];
        let mut out = vec![0.0f32; 12];
        for _ in 0..3 {
            gemm(Trans::N, Trans::N, 2, 4, 3, &a, &b, &mut out[..8], false);
        }
        clock.advance_ns(50); // lands in no call; times stay 0
        gemm(Trans::T, Trans::N, 3, 4, 2, &a, &b[..8], &mut out, false);
        disable();
        // a disabled call must not be tallied
        gemm(Trans::N, Trans::N, 2, 4, 3, &a, &b, &mut out[..8], false);

        let (tallies, overflow) = snapshot();
        assert_eq!(overflow, 0);
        assert_eq!(tallies.len(), 2);
        let nn = tallies.iter().find(|t| t.label() == "nn.2x4x3").expect("nn shape");
        assert_eq!((nn.calls, nn.total_ns), (3, 0));
        assert_eq!(nn.flops_per_call(), 48);
        assert_eq!(nn.total_flops(), 144);
        let tn = tallies.iter().find(|t| t.label() == "tn.3x4x2").expect("tn shape");
        assert_eq!(tn.calls, 1);

        let registry = MetricsRegistry::new();
        export_into(&registry);
        assert_eq!(registry.counter("kernel.gemm.calls").get(), 4);
        assert_eq!(registry.counter("kernel.gemm.nn.2x4x3.flops").get(), 144);
        assert_eq!(registry.counter("kernel.gemm.overflow").get(), 0);
        reset();
    }

    #[test]
    fn sim_clock_advance_during_profiling_is_attributed() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        reset();
        enable(Clock::sim());
        tally(Trans::N, Trans::N, 8, 8, 8, 123);
        tally(Trans::N, Trans::N, 8, 8, 8, 7);
        let (tallies, _) = snapshot();
        assert_eq!(tallies.len(), 1);
        assert_eq!((tallies[0].calls, tallies[0].total_ns), (2, 130));
        assert!(tallies[0].gflops() > 0.0);
        disable();
        reset();
    }

    #[test]
    fn overflow_counts_instead_of_losing_calls() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        reset();
        for m in 1..=SLOTS + 3 {
            tally(Trans::N, Trans::N, m, 1, 1, 0);
        }
        let (tallies, overflow) = snapshot();
        assert_eq!(tallies.len(), SLOTS);
        assert_eq!(overflow, 3);
        assert_eq!(tallies.iter().map(|t| t.calls).sum::<u64>(), SLOTS as u64);
        reset();
    }
}
