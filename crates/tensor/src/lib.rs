//! # mdl-tensor
//!
//! From-scratch dense linear algebra for the `mobile-dl` workspace — the
//! numeric substrate beneath every other crate in the reproduction of
//! *Deep Learning Towards Mobile Applications* (ICDCS 2018).
//!
//! The crate provides:
//!
//! - [`Matrix`]: a row-major `f32` matrix with the product/transpose/reduction
//!   operations the neural-network layers need;
//! - [`kernel`]: the cache-blocked, panel-packed GEMM every matrix product
//!   dispatches to, parallelized over row panels with bit-identical results
//!   for any thread count, plus [`kernel::int8`] — the explicit-SIMD int8
//!   GEMM microkernel behind the quantized inference path;
//! - [`quant`]: per-output-channel symmetric int8 weights ([`Int8Matrix`])
//!   and the saturating activation-requantize helpers;
//! - [`arena`]: compile-once shared scratch arenas ([`Arena`]/[`BufferId`])
//!   that let `mdl_nn`'s execution plans run with zero steady-state heap
//!   allocation;
//! - [`Init`]: seeded weight-initialisation schemes (uniform, Gaussian,
//!   Xavier, He);
//! - [`linalg`]: one-sided Jacobi SVD (for low-rank layer compression),
//!   L2 norms and clipping (for differential privacy);
//! - [`fft`]: radix-2 FFT and circulant products (for CirCNN-style layers);
//! - [`stats`]: softmax/log-sum-exp, one-hot encoding, correlation and
//!   quantile helpers used by the applications' analytics.
//!
//! # Examples
//!
//! ```
//! use mdl_tensor::{Matrix, Init};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let w = Init::Xavier.sample(4, 3, &mut rng);
//! let x = Matrix::ones(2, 4);
//! let y = x.matmul(&w);
//! assert_eq!(y.shape(), (2, 3));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod fft;
pub mod init;
pub mod kernel;
pub mod linalg;
pub mod matrix;
pub mod quant;
pub mod stats;

pub use arena::{Arena, ArenaBuilder, BufferId};
pub use init::Init;
pub use matrix::Matrix;
pub use quant::Int8Matrix;

#[cfg(test)]
mod proptests {
    use crate::fft::{circulant_matvec, circulant_matvec_dense};
    use crate::linalg::{clip_l2, l2_norm, svd};
    use crate::stats::{log_sum_exp, softmax_rows};
    use crate::Matrix;
    use proptest::prelude::*;

    fn small_f32() -> impl Strategy<Value = f32> {
        (-100i32..=100).prop_map(|v| v as f32 / 10.0)
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_add(
            a in prop::collection::vec(small_f32(), 12),
            b in prop::collection::vec(small_f32(), 12),
            c in prop::collection::vec(small_f32(), 12),
        ) {
            let a = Matrix::from_vec(3, 4, a);
            let b = Matrix::from_vec(4, 3, b);
            let c = Matrix::from_vec(4, 3, c);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-2));
        }

        #[test]
        fn transpose_of_product_is_reversed_product(
            a in prop::collection::vec(small_f32(), 6),
            b in prop::collection::vec(small_f32(), 6),
        ) {
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.approx_eq(&rhs, 1e-3));
        }

        #[test]
        fn clip_never_increases_norm(
            mut v in prop::collection::vec(small_f32(), 1..32),
            max_norm in 0.1f64..10.0,
        ) {
            let before = l2_norm(&v);
            clip_l2(&mut v, max_norm);
            let after = l2_norm(&v);
            prop_assert!(after <= max_norm + 1e-4);
            prop_assert!(after <= before + 1e-6);
        }

        #[test]
        fn softmax_rows_are_distributions(
            data in prop::collection::vec(-20f32..20.0, 12),
        ) {
            let p = softmax_rows(&Matrix::from_vec(3, 4, data));
            for r in 0..3 {
                let s: f32 = p.row(r).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }

        #[test]
        fn log_sum_exp_bounds(xs in prop::collection::vec(-50f64..50.0, 1..16)) {
            let lse = log_sum_exp(&xs);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lse >= max - 1e-9);
            prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn svd_reconstruction_property(
            data in prop::collection::vec(small_f32(), 20),
        ) {
            let a = Matrix::from_vec(5, 4, data);
            let d = svd(&a);
            prop_assert!(d.reconstruct().approx_eq(&a, 1e-2));
        }

        #[test]
        fn blocked_kernel_bitwise_matches_naive_on_arbitrary_shapes(
            m in 1usize..24,
            n in 1usize..40,
            k in 0usize..48,
            a_pool in prop::collection::vec(small_f32(), 24 * 48),
            b_pool in prop::collection::vec(small_f32(), 48 * 40),
        ) {
            use crate::kernel::{gemm, gemm_naive, Trans};
            // The same flat buffer serves as m×k or k×m (equal length), so
            // all four transposition combinations reuse one pool slice.
            let a = &a_pool[..m * k];
            let b = &b_pool[..k * n];
            for (ta, tb) in [
                (Trans::N, Trans::N),
                (Trans::T, Trans::N),
                (Trans::N, Trans::T),
                (Trans::T, Trans::T),
            ] {
                let mut fast = vec![f32::NAN; m * n];
                let mut slow = vec![f32::NAN; m * n];
                gemm(ta, tb, m, n, k, a, b, &mut fast, false);
                gemm_naive(ta, tb, m, n, k, a, b, &mut slow, false);
                prop_assert!(
                    fast.iter().zip(slow.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "blocked != naive at {m}x{n}x{k} {ta:?}{tb:?}"
                );
            }
        }

        #[test]
        fn kernel_bits_do_not_depend_on_thread_count(
            m in 1usize..32,
            n in 1usize..32,
            k in 1usize..32,
            a_pool in prop::collection::vec(small_f32(), 32 * 32),
            b_pool in prop::collection::vec(small_f32(), 32 * 32),
        ) {
            use crate::kernel::{gemm, set_threads, threads, Trans, TEST_THREADS_LOCK};
            let a = &a_pool[..m * k];
            let b = &b_pool[..k * n];
            let _guard = TEST_THREADS_LOCK.lock().unwrap();
            let before = threads();
            set_threads(1);
            let mut reference = vec![0.0f32; m * n];
            gemm(Trans::N, Trans::N, m, n, k, a, b, &mut reference, false);
            for nt in [2usize, 8] {
                set_threads(nt);
                let mut out = vec![0.0f32; m * n];
                gemm(Trans::N, Trans::N, m, n, k, a, b, &mut out, false);
                prop_assert!(
                    out.iter().zip(reference.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "threads={nt} diverged at {m}x{n}x{k}"
                );
            }
            set_threads(before);
        }

        #[test]
        fn int8_kernel_bitwise_matches_reference_on_arbitrary_shapes(
            m in 1usize..16,
            n in 1usize..40,
            k in 0usize..80,
            a_pool in prop::collection::vec((-128i32..=127).prop_map(|v| v as i8), 16 * 80),
            b_pool in prop::collection::vec((-128i32..=127).prop_map(|v| v as i8), 40 * 80),
            acc in any::<bool>(),
        ) {
            use crate::kernel::int8::{gemm_i8, gemm_i8_ref, gemm_i8_scalar};
            let a = &a_pool[..m * k];
            let bt = &b_pool[..n * k];
            let mut reference = vec![7i32; m * n];
            let mut dispatched = vec![7i32; m * n];
            let mut scalar = vec![7i32; m * n];
            gemm_i8_ref(m, n, k, a, bt, &mut reference, acc);
            gemm_i8(m, n, k, a, bt, &mut dispatched, acc);
            gemm_i8_scalar(m, n, k, a, bt, &mut scalar, acc);
            prop_assert_eq!(&dispatched, &reference, "dispatched != ref at {}x{}x{}", m, n, k);
            prop_assert_eq!(&scalar, &reference, "scalar != ref at {}x{}x{}", m, n, k);
        }

        #[test]
        fn int8_requantize_round_trips_within_half_step(
            xs in prop::collection::vec(-50f32..50.0, 1..64),
        ) {
            use crate::quant::quantize_slice;
            let mut q = vec![0i8; xs.len()];
            let scale = quantize_slice(&xs, &mut q);
            for (&x, &b) in xs.iter().zip(&q) {
                prop_assert!((x - b as f32 * scale).abs() <= 0.5 * scale + 1e-6);
                prop_assert!((-127..=127).contains(&(b as i32)));
            }
        }

        #[test]
        fn circulant_fft_equals_dense(
            c in prop::collection::vec(small_f32(), 8),
            x in prop::collection::vec(small_f32(), 8),
        ) {
            let fast = circulant_matvec(&c, &x);
            let dense = circulant_matvec_dense(&c, &x);
            for (f, d) in fast.iter().zip(dense.iter()) {
                prop_assert!((f - d).abs() < 1e-2);
            }
        }
    }
}
