//! # mdl-tensor
//!
//! From-scratch dense linear algebra for the `mobile-dl` workspace — the
//! numeric substrate beneath every other crate in the reproduction of
//! *Deep Learning Towards Mobile Applications* (ICDCS 2018).
//!
//! The crate provides:
//!
//! - [`Matrix`]: a row-major `f32` matrix with the product/transpose/reduction
//!   operations the neural-network layers need;
//! - [`Init`]: seeded weight-initialisation schemes (uniform, Gaussian,
//!   Xavier, He);
//! - [`linalg`]: one-sided Jacobi SVD (for low-rank layer compression),
//!   L2 norms and clipping (for differential privacy);
//! - [`fft`]: radix-2 FFT and circulant products (for CirCNN-style layers);
//! - [`stats`]: softmax/log-sum-exp, one-hot encoding, correlation and
//!   quantile helpers used by the applications' analytics.
//!
//! # Examples
//!
//! ```
//! use mdl_tensor::{Matrix, Init};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let w = Init::Xavier.sample(4, 3, &mut rng);
//! let x = Matrix::ones(2, 4);
//! let y = x.matmul(&w);
//! assert_eq!(y.shape(), (2, 3));
//! ```

#![warn(missing_docs)]

pub mod fft;
pub mod init;
pub mod linalg;
pub mod matrix;
pub mod stats;

pub use init::Init;
pub use matrix::Matrix;

#[cfg(test)]
mod proptests {
    use crate::fft::{circulant_matvec, circulant_matvec_dense};
    use crate::linalg::{clip_l2, l2_norm, svd};
    use crate::stats::{log_sum_exp, softmax_rows};
    use crate::Matrix;
    use proptest::prelude::*;

    fn small_f32() -> impl Strategy<Value = f32> {
        (-100i32..=100).prop_map(|v| v as f32 / 10.0)
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_add(
            a in prop::collection::vec(small_f32(), 12),
            b in prop::collection::vec(small_f32(), 12),
            c in prop::collection::vec(small_f32(), 12),
        ) {
            let a = Matrix::from_vec(3, 4, a);
            let b = Matrix::from_vec(4, 3, b);
            let c = Matrix::from_vec(4, 3, c);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-2));
        }

        #[test]
        fn transpose_of_product_is_reversed_product(
            a in prop::collection::vec(small_f32(), 6),
            b in prop::collection::vec(small_f32(), 6),
        ) {
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.approx_eq(&rhs, 1e-3));
        }

        #[test]
        fn clip_never_increases_norm(
            mut v in prop::collection::vec(small_f32(), 1..32),
            max_norm in 0.1f64..10.0,
        ) {
            let before = l2_norm(&v);
            clip_l2(&mut v, max_norm);
            let after = l2_norm(&v);
            prop_assert!(after <= max_norm + 1e-4);
            prop_assert!(after <= before + 1e-6);
        }

        #[test]
        fn softmax_rows_are_distributions(
            data in prop::collection::vec(-20f32..20.0, 12),
        ) {
            let p = softmax_rows(&Matrix::from_vec(3, 4, data));
            for r in 0..3 {
                let s: f32 = p.row(r).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }

        #[test]
        fn log_sum_exp_bounds(xs in prop::collection::vec(-50f64..50.0, 1..16)) {
            let lse = log_sum_exp(&xs);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lse >= max - 1e-9);
            prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn svd_reconstruction_property(
            data in prop::collection::vec(small_f32(), 20),
        ) {
            let a = Matrix::from_vec(5, 4, data);
            let d = svd(&a);
            prop_assert!(d.reconstruct().approx_eq(&a, 1e-2));
        }

        #[test]
        fn circulant_fft_equals_dense(
            c in prop::collection::vec(small_f32(), 8),
            x in prop::collection::vec(small_f32(), 8),
        ) {
            let fast = circulant_matvec(&c, &x);
            let dense = circulant_matvec_dense(&c, &x);
            for (f, d) in fast.iter().zip(dense.iter()) {
                prop_assert!((f - d).abs() < 1e-2);
            }
        }
    }
}
