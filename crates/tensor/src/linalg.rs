//! Dense linear-algebra routines: SVD, norms and helpers.
//!
//! The singular value decomposition powers low-rank compression of dense
//! layers (§III-B of the paper). A one-sided Jacobi iteration is used: it is
//! simple, numerically robust for the modest layer sizes involved, and needs
//! no external dependencies.

use crate::Matrix;

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × r` (orthonormal columns).
    pub u: Matrix,
    /// Singular values in non-increasing order, length `r = min(m, n)`.
    pub s: Vec<f32>,
    /// Right singular vectors, `n × r` (orthonormal columns).
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs the (possibly truncated) matrix `U · diag(S) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.s.len();
        let mut us = self.u.clone();
        for c in 0..r {
            for row in 0..us.rows() {
                us[(row, c)] *= self.s[c];
            }
        }
        us.matmul_nt(&self.v)
    }

    /// Keeps only the `rank` largest singular triplets.
    pub fn truncate(&self, rank: usize) -> Svd {
        let r = rank.min(self.s.len());
        let u = Matrix::from_fn(self.u.rows(), r, |i, j| self.u[(i, j)]);
        let v = Matrix::from_fn(self.v.rows(), r, |i, j| self.v[(i, j)]);
        Svd { u, s: self.s[..r].to_vec(), v }
    }

    /// Fraction of squared spectral energy captured by the leading `rank` values.
    pub fn energy_captured(&self, rank: usize) -> f64 {
        let total: f64 = self.s.iter().map(|&s| (s as f64).powi(2)).sum();
        if total == 0.0 {
            return 1.0;
        }
        let kept: f64 = self.s.iter().take(rank).map(|&s| (s as f64).powi(2)).sum();
        kept / total
    }
}

/// Computes the thin SVD of `a` by one-sided Jacobi rotations.
///
/// Works on the `m × n` input directly when `m >= n`, otherwise on the
/// transpose, so the iteration always orthogonalises the smaller side.
///
/// # Examples
///
/// ```
/// use mdl_tensor::{Matrix, linalg::svd};
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let d = svd(&a);
/// assert!((d.s[0] - 3.0).abs() < 1e-4 && (d.s[1] - 2.0).abs() < 1e-4);
/// assert!(d.reconstruct().approx_eq(&a, 1e-4));
/// ```
pub fn svd(a: &Matrix) -> Svd {
    if a.rows() >= a.cols() {
        svd_tall(a)
    } else {
        let d = svd_tall(&a.transpose());
        Svd { u: d.v, s: d.s, v: d.u }
    }
}

/// One-sided Jacobi SVD for `m >= n`. Internally in `f64` for accuracy.
// The rotation kernel reads and writes two columns of `cols` at the same
// index, which has no clean iterator form.
#[allow(clippy::needless_range_loop)]
fn svd_tall(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    // Column-major working copy of A (columns get orthogonalised in place).
    let mut cols: Vec<Vec<f64>> =
        (0..n).map(|j| (0..m).map(|i| a[(i, j)] as f64).collect()).collect();
    let mut v = vec![vec![0.0f64; n]; n];
    for (j, row) in v.iter_mut().enumerate() {
        row[j] = 1.0;
    }

    let eps = 1e-12;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    app += cols[p][i] * cols[p][i];
                    aqq += cols[q][i] * cols[q][i];
                    apq += cols[p][i] * cols[q][i];
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off += apq.abs();
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let (xp, xq) = (cols[p][i], cols[q][i]);
                    cols[p][i] = c * xp - s * xq;
                    cols[q][i] = s * xp + c * xq;
                }
                for row in v.iter_mut() {
                    let (vp, vq) = (row[p], row[q]);
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }

    // Singular values are column norms; normalise columns to get U.
    let mut triples: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = cols[j].iter().map(|x| x * x).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    triples.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut u = Matrix::zeros(m, n);
    let mut vv = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (out_j, &(norm, j)) in triples.iter().enumerate() {
        s.push(norm as f32);
        if norm > 1e-30 {
            for i in 0..m {
                u[(i, out_j)] = (cols[j][i] / norm) as f32;
            }
        }
        for i in 0..n {
            vv[(i, out_j)] = v[i][j] as f32;
        }
    }
    Svd { u, s, v: vv }
}

/// Euclidean (L2) norm of a flat slice, accumulated in `f64`.
pub fn l2_norm(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt()
}

/// Scales `xs` in place so its L2 norm is at most `max_norm`.
///
/// Returns the scaling factor applied (`1.0` when no clipping occurred).
pub fn clip_l2(xs: &mut [f32], max_norm: f64) -> f64 {
    let norm = l2_norm(xs);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for x in xs.iter_mut() {
            *x = (*x as f64 * scale) as f32;
        }
        scale
    } else {
        1.0
    }
}

/// Dot product accumulated in `f64`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equally long slices");
    a.iter().zip(b.iter()).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Outer product `a ⊗ b` as an `a.len() × b.len()` matrix.
pub fn outer(a: &[f32], b: &[f32]) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn svd_reconstructs_random_tall() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Init::Normal { std: 1.0 }.sample(12, 7, &mut rng);
        let d = svd(&a);
        assert!(d.reconstruct().approx_eq(&a, 1e-3));
    }

    #[test]
    fn svd_reconstructs_random_wide() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Init::Normal { std: 1.0 }.sample(5, 11, &mut rng);
        let d = svd(&a);
        assert!(d.reconstruct().approx_eq(&a, 1e-3));
    }

    #[test]
    fn svd_singular_values_sorted_and_orthonormal_u() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Init::Normal { std: 1.0 }.sample(10, 6, &mut rng);
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-5, "singular values not sorted: {:?}", d.s);
        }
        let gram = d.u.matmul_tn(&d.u);
        assert!(gram.approx_eq(&Matrix::identity(6), 1e-3));
    }

    #[test]
    fn truncated_svd_of_low_rank_matrix_is_exact() {
        // rank-2 matrix built from two outer products
        let u1 = [1.0, 2.0, -1.0, 0.5];
        let v1 = [0.3, -0.7, 1.1];
        let u2 = [-0.2, 0.9, 0.4, -1.3];
        let v2 = [1.0, 0.2, -0.5];
        let a = outer(&u1, &v1).add(&outer(&u2, &v2));
        let d = svd(&a);
        assert!(d.s[2] < 1e-4, "third singular value should vanish: {:?}", d.s);
        let t = d.truncate(2);
        assert!(t.reconstruct().approx_eq(&a, 1e-3));
        assert!(d.energy_captured(2) > 0.999_99);
    }

    #[test]
    fn clip_l2_behaviour() {
        let mut v = vec![3.0, 4.0];
        let scale = clip_l2(&mut v, 1.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        assert!((scale - 0.2).abs() < 1e-6);
        let mut w = vec![0.3, 0.4];
        assert_eq!(clip_l2(&mut w, 1.0), 1.0);
        assert_eq!(w, vec![0.3, 0.4]);
    }

    #[test]
    fn dot_and_outer() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let o = outer(&[1.0, 2.0], &[5.0, 6.0, 7.0]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 14.0);
    }
}
