//! Dense row-major matrices over `f32`.
//!
//! [`Matrix`] is the workhorse of the whole stack: layers, optimizers,
//! compression codecs and classical baselines all operate on it. The design
//! favours predictable, allocation-explicit APIs over operator overloading
//! magic: shape mismatches are programming errors and panic with a clear
//! message rather than being silently broadcast.

use crate::kernel::{self, Trans};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use mdl_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} but expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n × 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index {c} out of bounds for {} columns", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns a new matrix consisting of the given rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// Dispatches to the blocked, panel-packed kernel in [`crate::kernel`];
    /// results are bit-identical regardless of the kernel thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `out = self · other`, reshaping `out`'s buffer without reallocating
    /// when capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_to(self.rows, other.cols);
        kernel::gemm(
            Trans::N,
            Trans::N,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
        );
    }

    /// `out = selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_to(self.cols, other.cols);
        kernel::gemm(
            Trans::T,
            Trans::N,
            self.cols,
            other.cols,
            self.rows,
            &self.data,
            &other.data,
            &mut out.data,
            false,
        );
    }

    /// `out = self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_to(self.rows, other.rows);
        kernel::gemm(
            Trans::N,
            Trans::T,
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
        );
    }

    /// `out += self · other` (accumulating; `out` keeps its contents).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul_acc inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul_acc output shape mismatch");
        kernel::gemm(
            Trans::N,
            Trans::N,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            true,
        );
    }

    /// `out += selfᵀ · other` (accumulating gradient form).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn matmul_tn_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn_acc inner dimension mismatch");
        assert_eq!(out.shape(), (self.cols, other.cols), "matmul_tn_acc output shape mismatch");
        kernel::gemm(
            Trans::T,
            Trans::N,
            self.cols,
            other.cols,
            self.rows,
            &self.data,
            &other.data,
            &mut out.data,
            true,
        );
    }

    /// `out += self · otherᵀ` (accumulating).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn matmul_nt_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt_acc inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, other.rows), "matmul_nt_acc output shape mismatch");
        kernel::gemm(
            Trans::N,
            Trans::T,
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            true,
        );
    }

    /// Fused dense layer: `out = self · other + bias` with the `1 × n`
    /// bias broadcast over rows, without any intermediate allocation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn matmul_bias_into(&self, other: &Matrix, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul_bias inner dimension mismatch");
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, other.cols, "bias width mismatch");
        out.resize_to(self.rows, other.cols);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&bias.data);
        }
        kernel::gemm(
            Trans::N,
            Trans::N,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            true,
        );
    }

    /// Reference `self · other` using the naive triple-loop kernel; kept
    /// for benchmarking against the blocked path.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernel::gemm_naive(
            Trans::N,
            Trans::N,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
            false,
        );
        out
    }

    /// Element-wise sum, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Applies `f` element-wise over paired entries of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "element-wise op requires equal shapes");
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign requires equal shapes");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign requires equal shapes");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// In-place element-wise `self *= other` (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "hadamard_assign requires equal shapes");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled requires equal shapes");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every element to `value` without reallocating.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Reshapes `self` to `rows × cols`, reusing the existing buffer when
    /// its capacity suffices. Element values are unspecified afterwards —
    /// this is a workspace primitive for `_into` targets, not a resize
    /// that preserves contents.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a same-shaped copy of `other`, reusing the buffer.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// In-place row broadcast: adds the `1 × cols` vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × self.cols()`.
    pub fn add_row_broadcast_assign(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
    }

    /// Accumulates the row-sum of `self` into the `1 × cols` vector `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `1 × self.cols()`.
    pub fn sum_rows_acc(&self, out: &mut Matrix) {
        assert_eq!(out.rows, 1, "sum_rows_acc target must be a row vector");
        assert_eq!(out.cols, self.cols, "sum_rows_acc width mismatch");
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
    }

    /// Returns `self` scaled by a constant.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// In-place scaling by a constant.
    pub fn scale_mut(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies `f` to each element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to each element in place.
    pub fn map_mut(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `row` (a `1 × cols` matrix) to every row of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Sums over rows, producing a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm (`sqrt` of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt() as f32
    }

    /// Largest absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element per row (first occurrence wins).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Near-equality check with an absolute tolerance.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(other.data.iter()).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural starting state for scratch
    /// buffers later shaped by `resize_to`/`_into` calls.
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full_identity() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::ones(2, 3).sum(), 6.0);
        assert_eq!(Matrix::full(2, 2, 2.5).sum(), 10.0);
        let i = Matrix::identity(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 1.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r + c) as f32 * 0.25);
        let expect = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).approx_eq(&expect, 1e-5));

        let b2 = Matrix::from_fn(6, 3, |r, c| (r as f32 - c as f32) * 0.1);
        let expect2 = a.matmul(&b2.transpose());
        assert!(a.matmul_nt(&b2).approx_eq(&expect2, 1e-5));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(a.add(&b).sum(), 110.0);
        assert_eq!(b.sub(&a).sum(), 90.0);
        assert_eq!(a.hadamard(&b)[(1, 1)], 160.0);
        let mut c = a.clone();
        c.add_scaled(2.0, &b);
        assert_eq!(c[(0, 0)], 21.0);
    }

    #[test]
    fn broadcast_and_row_reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let shifted = m.add_row_broadcast(&bias);
        assert_eq!(shifted[(1, 1)], 24.0);
        assert_eq!(m.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn stack_and_select() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (2, 2));
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        let sel = v.select_rows(&[1, 0, 1]);
        assert_eq!(sel.row(0), &[3.0, 4.0]);
        assert_eq!(sel.rows(), 3);
    }

    #[test]
    fn argmax_and_norms() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.0], &[0.5, 0.2, 0.3]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
        let n = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((n.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(n.max_abs(), 4.0);
    }

    #[test]
    fn finiteness_check() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let a = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 * 0.3 - 2.0);
        let b = Matrix::from_fn(7, 4, |r, c| (r as f32 - c as f32) * 0.7);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // reuse the same target with new shapes
        a.matmul_nt_into(&a, &mut out);
        assert_eq!(out, a.matmul_nt(&a));
        a.matmul_tn_into(&a, &mut out);
        assert_eq!(out, a.matmul_tn(&a));
    }

    #[test]
    fn acc_variants_accumulate() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let mut out = Matrix::ones(3, 2);
        a.matmul_acc(&b, &mut out);
        let expect = a.matmul(&b).add(&Matrix::ones(3, 2));
        assert!(out.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn matmul_bias_fuses_broadcast() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let w = Matrix::from_fn(3, 5, |r, c| (r as f32) - (c as f32) * 0.2);
        let bias = Matrix::row_vector(&[1.0, -2.0, 3.0, -4.0, 5.0]);
        let mut out = Matrix::default();
        a.matmul_bias_into(&w, &bias, &mut out);
        assert!(out.approx_eq(&a.matmul(&w).add_row_broadcast(&bias), 1e-6));
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        let a = Matrix::from_fn(33, 19, |r, c| ((r * 19 + c) as f32).sin());
        let b = Matrix::from_fn(19, 21, |r, c| ((r * 21 + c) as f32).cos());
        let fast = a.matmul(&b);
        let slow = a.matmul_naive(&b);
        assert!(fast
            .as_slice()
            .iter()
            .zip(slow.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn in_place_helpers() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        let mut c = b.clone();
        c.sub_assign(&a);
        assert_eq!(c, b.sub(&a));
        let mut d = a.clone();
        d.hadamard_assign(&b);
        assert_eq!(d, a.hadamard(&b));
        d.fill(7.0);
        assert_eq!(d.sum(), 28.0);
        let mut e = Matrix::default();
        e.copy_from(&a);
        assert_eq!(e, a);
        e.resize_to(1, 2);
        assert_eq!(e.shape(), (1, 2));
        let mut f = a.clone();
        f.add_row_broadcast_assign(&Matrix::row_vector(&[10.0, 20.0]));
        assert_eq!(f, a.add_row_broadcast(&Matrix::row_vector(&[10.0, 20.0])));
        let mut s = Matrix::zeros(1, 2);
        a.sum_rows_acc(&mut s);
        assert_eq!(s, a.sum_rows());
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let repr = format!("{m:?}");
        assert!(repr.contains("Matrix 3x4"));
    }
}
