//! Per-channel symmetric int8 quantization: the representation the
//! quantized inference path executes directly (no f32 round-trip).
//!
//! # Scheme
//!
//! Weights quantize **per output channel**: channel `j` gets
//! `scale_j = max|w[·][j]| / 127` (1.0 for an all-zero channel) and the
//! bytes `round(w / scale_j)` saturated to `[-127, 127]`. Activations
//! quantize **per tensor** with the same rule. A dot product of
//! quantized operands then satisfies
//! `Σ aᵢ·bᵢ ≈ s_x · s_w · Σ qa_i · qb_i`, so the whole matrix product
//! runs in the exact-integer [`crate::kernel::int8`] kernel and only the
//! final rescale touches floating point. `-128` is excluded so negation
//! never saturates asymmetrically.
//!
//! The quantized weight matrix is stored **transposed** relative to the
//! f32 layer convention (`out × in`, one contiguous row per output
//! channel) — exactly the `bt` layout [`crate::kernel::int8::gemm_i8`]
//! streams over.

use crate::kernel::int8;
use crate::Matrix;

/// Saturating symmetric requantize of one value: `round(x / scale)`
/// clamped to `[-127, 127]`. A non-finite ratio (zero/inf/NaN scale
/// pathologies) saturates like any out-of-range value.
#[inline]
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    let r = (x / scale).round();
    if r >= 127.0 {
        127
    } else if r <= -127.0 {
        -127
    } else if r.is_nan() {
        0
    } else {
        r as i8
    }
}

/// Symmetric scale for a tensor: `max|x| / 127`, or 1.0 when the tensor
/// is all-zero (any scale represents zeros exactly; 1.0 keeps the
/// arithmetic finite).
#[inline]
pub fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes a slice per-tensor: writes `round(src / scale)` into `dst`
/// and returns the scale used.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize_slice(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len());
    let scale = symmetric_scale(src.iter().fold(0.0f32, |m, &v| m.max(v.abs())));
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = quantize_value(s, scale);
    }
    scale
}

/// A per-output-channel symmetric int8 weight matrix.
///
/// Logically the same `in × out` operand as the f32 layer weight it was
/// quantized from, but stored channel-major (`out × in`) so each output
/// channel is one contiguous byte row for the int8 GEMM.
#[derive(Clone, Debug)]
pub struct Int8Matrix {
    in_dim: usize,
    out_dim: usize,
    /// `out_dim × in_dim` row-major: row `j` holds channel `j`.
    data: Vec<i8>,
    /// One symmetric scale per output channel (`len == out_dim`).
    scales: Vec<f32>,
}

impl Int8Matrix {
    /// Quantizes an `in × out` f32 weight matrix per output channel.
    pub fn quantize(w: &Matrix) -> Self {
        let (in_dim, out_dim) = w.shape();
        let src = w.as_slice();
        let mut scales = vec![1.0f32; out_dim];
        for (j, scale) in scales.iter_mut().enumerate() {
            let mut max_abs = 0.0f32;
            for i in 0..in_dim {
                max_abs = max_abs.max(src[i * out_dim + j].abs());
            }
            *scale = symmetric_scale(max_abs);
        }
        let mut data = vec![0i8; in_dim * out_dim];
        for (j, &scale) in scales.iter().enumerate() {
            let row = &mut data[j * in_dim..(j + 1) * in_dim];
            for (i, q) in row.iter_mut().enumerate() {
                *q = quantize_value(src[i * out_dim + j], scale);
            }
        }
        Self { in_dim, out_dim, data, scales }
    }

    /// Builds directly from channel-major bytes and per-channel scales
    /// (the `mdl-compress` artifact bridge, which never materializes an
    /// f32 weight matrix).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not `out_dim × in_dim` or `scales` is not
    /// `out_dim` long.
    pub fn from_channel_rows(
        out_dim: usize,
        in_dim: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
    ) -> Self {
        assert_eq!(data.len(), out_dim * in_dim, "data must be out×in channel-major");
        assert_eq!(scales.len(), out_dim, "one scale per output channel");
        Self { in_dim, out_dim, data, scales }
    }

    /// Input dimension (rows of the logical f32 operand).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (columns of the logical f32 operand = channels).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Channel-major quantized bytes (`out_dim × in_dim`).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// `out[i·out + j] {=, +=} Σ_t x[i·in + t] · w_q[j][t]` over `m`
    /// quantized input rows — the raw integer accumulators, to be scaled
    /// by `x_scale · scales()[j]` by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `m × in_dim` or `out` is not `m × out_dim`.
    pub fn gemm_into(&self, m: usize, x: &[i8], out: &mut [i32], acc: bool) {
        int8::gemm_i8(m, self.out_dim, self.in_dim, x, &self.data, out, acc);
    }

    /// Row-streaming variant of [`Int8Matrix::gemm_into`]: each input
    /// row's accumulators land in the `out_dim`-wide `row_acc` scratch and
    /// are handed to `drain(i, row_acc)` before the next row is computed,
    /// so bias fold / dequantize / activation fuse into the drain and no
    /// `m × out_dim` `i32` buffer ever exists. Accumulators are
    /// bit-identical to the full GEMM
    /// ([`crate::kernel::int8::gemm_i8_row_drain`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `m × in_dim` or `row_acc` is not `out_dim`.
    pub fn gemm_row_drain(
        &self,
        m: usize,
        x: &[i8],
        row_acc: &mut [i32],
        drain: impl FnMut(usize, &mut [i32]),
    ) {
        int8::gemm_i8_row_drain(m, self.out_dim, self.in_dim, x, &self.data, row_acc, drain);
    }

    /// Reconstructs the `in × out` f32 matrix (diagnostics only — the
    /// inference path never calls this).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.in_dim, self.out_dim);
        let dst = out.as_mut_slice();
        for (j, &scale) in self.scales.iter().enumerate() {
            for i in 0..self.in_dim {
                dst[i * self.out_dim + j] = self.data[j * self.in_dim + i] as f32 * scale;
            }
        }
        out
    }

    /// Bytes held by the quantized representation (weights + scales).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_per_channel() {
        let w = Matrix::from_fn(8, 5, |i, j| ((i * 5 + j) as f32 * 0.37).sin() * (j + 1) as f32);
        let q = Int8Matrix::quantize(&w);
        let back = q.dequantize();
        for j in 0..5 {
            let scale = q.scales()[j];
            for i in 0..8 {
                let err = (w.as_slice()[i * 5 + j] - back.as_slice()[i * 5 + j]).abs();
                assert!(err <= 0.5 * scale + 1e-6, "channel {j} err {err} > half-step {scale}");
            }
        }
    }

    #[test]
    fn zero_channel_gets_unit_scale_and_exact_zeros() {
        let w = Matrix::from_fn(4, 2, |i, j| if j == 0 { 0.0 } else { i as f32 });
        let q = Int8Matrix::quantize(&w);
        assert_eq!(q.scales()[0], 1.0);
        assert!(q.data()[..4].iter().all(|&b| b == 0));
    }

    #[test]
    fn quantize_value_saturates() {
        assert_eq!(quantize_value(1e9, 1.0), 127);
        assert_eq!(quantize_value(-1e9, 1.0), -127);
        assert_eq!(quantize_value(0.49, 1.0), 0);
        assert_eq!(quantize_value(0.51, 1.0), 1);
    }

    #[test]
    fn gemm_into_matches_f32_product_within_quant_error() {
        let w = Matrix::from_fn(16, 6, |i, j| ((i + 2 * j) as f32 * 0.11).cos());
        let x: Vec<f32> = (0..32).map(|t| ((t as f32) * 0.2).sin()).collect();
        let q = Int8Matrix::quantize(&w);
        let mut xq = vec![0i8; 32];
        let sx = quantize_slice(&x, &mut xq);
        let mut accs = vec![0i32; 2 * 6];
        q.gemm_into(2, &xq, &mut accs, false);
        for i in 0..2 {
            for j in 0..6 {
                let exact: f32 = (0..16).map(|t| x[i * 16 + t] * w.as_slice()[t * 6 + j]).sum();
                let approx = accs[i * 6 + j] as f32 * sx * q.scales()[j];
                assert!((exact - approx).abs() < 0.05, "({i},{j}): {exact} vs {approx}");
            }
        }
    }
}
