//! Numerically careful statistics and activation-adjacent math.

use crate::Matrix;

/// Numerically stable `log(sum(exp(x)))` over a slice.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Row-wise softmax: each row of the output sums to one.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Row-wise log-softmax (stable).
pub fn log_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse: f32 = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

/// One-hot encodes labels into an `n × classes` matrix.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), classes);
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        out[(r, y)] = 1.0;
    }
    out
}

/// Sample mean of a slice (`0.0` when empty).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance of a slice (`0.0` when empty).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equally long slices.
///
/// Returns `0.0` when either slice is constant or they are empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equally long slices");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0f64;
    let mut vx = 0.0f64;
    let mut vy = 0.0f64;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = (x - mx) as f64;
        let dy = (y - my) as f64;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        (cov / (vx.sqrt() * vy.sqrt())) as f32
    }
}

/// Median of a slice (`0.0` when empty). Copies and sorts internally.
pub fn median(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// `p`-quantile (0 ≤ p ≤ 1) with linear interpolation; `0.0` when empty.
pub fn quantile(xs: &[f32], p: f64) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = p.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs = [1.0f64, 2.0, 3.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = Matrix::from_rows(&[&[0.5, -1.5, 2.0]]);
        let p = softmax_rows(&logits);
        let lp = log_softmax_rows(&logits);
        for c in 0..3 {
            assert!((lp[(0, c)].exp() - p[(0, c)]).abs() < 1e-5);
        }
    }

    #[test]
    fn one_hot_encodes() {
        let m = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.25f32.sqrt()).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-6);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn median_and_quantile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(quantile(&[0.0, 10.0], 0.5), 5.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.0), 1.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 1.0), 3.0);
    }
}
