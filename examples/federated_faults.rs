//! Federated averaging over a faulty mobile network.
//!
//! The same training task runs twice: once over the ideal fabric the
//! simulations used to assume, and once over an LTE cohort where clients
//! drop out mid-round, straggle at half speed, and lose packets — with
//! retries, per-round deadlines and majority-quorum aggregation keeping
//! the run alive. Both runs are bit-reproducible from their seeds.
//!
//! ```sh
//! cargo run --release --example federated_faults
//! ```

use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = mdl_core::data::synthetic::synthetic_digits(800, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 10, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(10);
    let config = FedConfig {
        rounds: 15,
        client_fraction: 1.0,
        learning_rate: 0.2,
        local_epochs: 3,
        ..Default::default()
    };

    // the legacy assumption: a perfect network
    let mut clean_rng = StdRng::seed_from_u64(5);
    let clean = run_federated(&spec, &clients, &test, &config, &availability, &mut clean_rng);

    // an LTE cohort with the stock "lossy cohort" fault plan: 20% dropout,
    // 25% of clients straggling at 2x, 15% flaky radios
    let mut faulty_rng = StdRng::seed_from_u64(5);
    let mut fabric = Fabric::new(
        10,
        FabricConfig::faulty(LinkConfig {
            loss_prob: 0.05,
            jitter_frac: 0.1,
            ..LinkConfig::clean(NetworkProfile::lte())
        }),
        0xFA17,
    );
    let faulty = run_federated_over(
        &spec,
        &clients,
        &test,
        &config,
        &availability,
        &mut fabric,
        &mut faulty_rng,
    )
    .expect("majority quorum is reachable under the stock fault plan");

    println!("ideal fabric:  accuracy {:.2}%", 100.0 * clean.final_accuracy());
    println!(
        "faulty LTE:    accuracy {:.2}%  ({} of {} rounds aggregated)",
        100.0 * faulty.final_accuracy(),
        faulty.history.len(),
        config.rounds,
    );
    let t = &faulty.transport;
    println!(
        "transport:     {} attempts, {} retries, {} timeouts, {} dropouts",
        t.attempts, t.retries, t.timeouts, t.drops,
    );
    println!(
        "               {} delivered up, {} down, {} wasted, {:.1} s simulated",
        t.bytes_up, t.bytes_down, t.wasted_bytes, t.sim_clock_s,
    );
    println!(
        "\nthe fault-tolerant run lands within {:.2} accuracy points of the ideal one",
        100.0 * (clean.final_accuracy() - faulty.final_accuracy()).abs()
    );
}
