//! Federated training of a next-keystroke-intent model across simulated
//! phones (§II of the paper).
//!
//! Forty phones each hold their owner's typing sessions (never uploaded).
//! The fleet collaboratively learns to classify a session's dominant intent
//! while honouring the idle + charging + Wi-Fi eligibility policy, and the
//! run is repeated with distributed selective SGD and with user-level DP.
//!
//! ```sh
//! cargo run --release --example federated_keyboard
//! ```

use mdl_core::prelude::*;

/// Builds a per-phone dataset from the typing simulator: each session is
/// featurized and labelled with its owner's dominant special key (a proxy
/// for "what the keyboard should pre-fetch").
fn phone_datasets(phones: usize, rng: &mut StdRng) -> (Vec<Dataset>, Dataset) {
    use mdl_core::data::typing::{featurize_session, FEATURE_DIM};
    let cohort = KeystrokeDataset::generate(
        &KeystrokeConfig { users: phones, sessions_per_user: 40, ..Default::default() },
        rng,
    );
    let mut per_phone: Vec<(Vec<Vec<f32>>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); phones];
    let mut test_x = Vec::new();
    let mut test_y = Vec::new();
    for (i, s) in cohort.sessions.iter().enumerate() {
        // label: which of {auto-correct, backspace, space} dominates
        let counts: Vec<f32> = (0..3).map(|k| s.session.special.col(k).iter().sum()).collect();
        let label = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k)
            .unwrap_or(2);
        let features = featurize_session(&s.session);
        if i % 5 == 0 {
            test_x.push(features);
            test_y.push(label);
        } else {
            per_phone[s.user].0.push(features);
            per_phone[s.user].1.push(label);
        }
    }
    let clients: Vec<Dataset> = per_phone
        .into_iter()
        .map(|(xs, ys)| {
            let mut x = Matrix::zeros(xs.len(), FEATURE_DIM);
            for (r, f) in xs.iter().enumerate() {
                x.row_mut(r).copy_from_slice(f);
            }
            Dataset::new(x, ys, 3)
        })
        .collect();
    let mut x = Matrix::zeros(test_x.len(), FEATURE_DIM);
    for (r, f) in test_x.iter().enumerate() {
        x.row_mut(r).copy_from_slice(f);
    }
    (clients, Dataset::new(x, test_y, 3))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let phones = 40;
    let (clients, test) = phone_datasets(phones, &mut rng);
    let dim = test.dim();
    let spec = MlpSpec::new(vec![dim, 24, 3], 5);
    println!(
        "{phones} phones, {} total local examples",
        clients.iter().map(|c| c.len()).sum::<usize>()
    );

    // 1. plain FedAvg under a realistic overnight availability pattern
    let availability = AvailabilityModel::overnight(phones);
    let run = run_federated(
        &spec,
        &clients,
        &test,
        &FedConfig {
            rounds: 40,
            client_fraction: 0.3,
            local_epochs: 4,
            learning_rate: 0.1,
            ..Default::default()
        },
        &availability,
        &mut rng,
    );
    println!(
        "\nFedAvg (overnight scheduling): accuracy {:.2}%  rounds {}  traffic {} KiB",
        100.0 * run.final_accuracy(),
        run.ledger.rounds,
        run.ledger.total_bytes() / 1024
    );

    // 2. distributed selective SGD: upload only 10% of gradients
    let sel = run_selective_sgd(
        &spec,
        &clients,
        &test,
        &SelectiveConfig { rounds: 40, upload_fraction: 0.1, ..Default::default() },
        &mut rng,
    );
    println!(
        "selective SGD (θ=0.1):        accuracy {:.2}%  upload {} KiB",
        100.0 * sel.final_accuracy(),
        sel.ledger.bytes_up / 1024
    );

    // 3. user-level differential privacy on top of FedAvg
    let dp = run_dp_fedavg(
        &spec,
        &clients,
        &test,
        &DpFedConfig {
            rounds: 40,
            sample_prob: 0.5,
            local_epochs: 4,
            learning_rate: 0.1,
            clip_norm: 1.0,
            noise_multiplier: 0.4,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "DP-FedAvg (z=0.4):            accuracy {:.2}%  ε={:.1} at δ=1e-5",
        100.0 * dp.final_accuracy(),
        dp.epsilon
    );
    println!("\nno raw typing session ever left a phone.");
}
