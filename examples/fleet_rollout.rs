//! Fleet rollout: ship a fine-tuned model to a device fleet as a delta
//! checkpoint, staged canary → pilot → fleet behind health gates, with a
//! broken candidate caught by the A/B diff and rolled back to the pin.
//!
//! ```sh
//! cargo run --release --example fleet_rollout
//! ```

use mdl_core::compress::{snap_to_codebook, uniform_codebook};
use mdl_core::prelude::*;

fn fresh_net(rng: &mut StdRng) -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::new(64, 48, Activation::Relu, rng));
    net.push(Dense::new(48, 10, Activation::Identity, rng));
    net
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let data = mdl_core::data::synthetic::synthetic_digits(1000, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);

    // v1: the model the fleet currently runs
    let mut base = fresh_net(&mut rng);
    let mut opt = Adam::new(0.005);
    fit_classifier(
        &mut base,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 4, batch_size: 32, ..Default::default() },
        &mut rng,
    );
    // quantized deployments live on a codebook grid; the candidate is a
    // sparse fine-tune snapped onto the same grid, so the delta is tiny
    let params = base.param_vector();
    let grid = uniform_codebook(&params, 256);
    base.set_param_vector(&snap_to_codebook(&params, &grid));
    let nudged: Vec<f32> =
        params.iter().enumerate().map(|(i, &v)| if i % 13 == 0 { v + 0.02 } else { v }).collect();
    let mut candidate = fresh_net(&mut rng);
    candidate.set_param_vector(&snap_to_codebook(&nudged, &grid));

    // the rollout: 500 devices on faulty LTE, canary -> pilot -> fleet
    let mut cfg = RolloutConfig::staged(500, 7);
    cfg.fabric = FabricConfig {
        faults: FaultPlan { flaky_prob: 0.3, flaky_loss: 0.25, ..FaultPlan::none() },
        ..FabricConfig::faulty(LinkConfig::clean(NetworkProfile::lte()))
    };
    cfg.chunk.chunk_bytes = 256;
    cfg.chunk.retry_budget = 48;

    let obs = Obs::sim();
    let report = run_rollout(&mut base, &mut candidate, &test.x, &test.y, &cfg, Some(&obs));

    println!("-- healthy candidate --");
    println!(
        "delta checkpoint: {} B vs {} B full ({:.1}x smaller, {} layout)",
        report.delta_bytes,
        report.full_bytes,
        report.bytes_ratio(),
        report.delta_mode
    );
    for s in &report.stages {
        println!(
            "  {:<7} cohort {:>4}  completed {:>4}  rounds {}  gate {}",
            s.name,
            s.cohort,
            s.completed,
            s.rounds,
            if s.gate.passed { "pass" } else { "FAIL" }
        );
    }
    println!(
        "completed={} serving v{} (A/B mismatch {:.1}%)",
        report.completed,
        report.serving_version,
        100.0 * report.ab.mismatch_rate
    );

    // now an injected regression: a zeroed classifier must not survive
    // the canary — the A/B snapshot diff flags it and serving reverts
    let mut broken = fresh_net(&mut rng);
    let n = broken.num_params();
    broken.set_param_vector(&vec![0.0; n]);
    let bad = run_rollout(&mut base, &mut broken, &test.x, &test.y, &cfg, Some(&obs));
    println!("\n-- injected regression --");
    println!(
        "flagged={} (mismatch {:.1}%), stages run {}, rolled_back={}, serving v{}",
        bad.ab.flagged,
        100.0 * bad.ab.mismatch_rate,
        bad.stages.len(),
        bad.rolled_back,
        bad.serving_version
    );
    for (name, base_v, cand_v) in bad.ab.diverging.iter().take(5) {
        println!("  diverging counter {name}: base {base_v} vs candidate {cand_v}");
    }

    println!("\n-- fleet.* obs counters --");
    let snap = obs.snapshot();
    for (name, value) in snap.counters_with_prefix("fleet.") {
        println!("  {name} = {value}");
    }
}
