//! Shrinking a model for a wearable (§III-B): the Deep Compression
//! pipeline plus the device-energy payoff the compression buys.
//!
//! ```sh
//! cargo run --release --example model_compression
//! ```

use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let data = mdl_core::data::synthetic::synthetic_digits(1600, 0.08, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);

    // an intentionally roomy model: 453 KiB of fp32 weights, which does NOT
    // fit the wearable's 256 KiB of on-chip SRAM — every inference streams
    // the overflow from DRAM at ~100× the energy per byte (§I)
    let mut net = Sequential::new();
    net.push(Dense::new(64, 1536, Activation::Relu, &mut rng));
    net.push(Dense::new(1536, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 15, ..Default::default() },
        &mut rng,
    );
    let base_acc = net.accuracy(&test.x, &test.y);
    let infos_before = net.layer_infos();
    println!(
        "trained 64→1536→10 MLP: {} params, accuracy {:.2}%",
        net.num_params(),
        100.0 * base_acc
    );

    // prune → quantize → Huffman
    let compressed = deep_compress(
        &mut net,
        Some((&train.x, &train.y)),
        &DeepCompressionConfig {
            sparsity: 0.85,
            quant_bits: 4,
            finetune: Some((5, 0.01)),
            prune_steps: 3,
        },
        &mut rng,
    );
    let r = &compressed.report;
    println!("\n-- Deep Compression stages --");
    println!("fp32 weights:        {:>8} B", r.original_bytes);
    println!(
        "pruned (CSR):        {:>8} B  ({:.0}% sparse)",
        r.pruned_csr_bytes,
        100.0 * r.sparsity
    );
    println!("quantized (4-bit):   {:>8} B", r.quantized_bytes);
    println!("+ Huffman:           {:>8} B  → {:.1}× smaller", r.final_bytes, r.ratio());

    let restored = compressed.decompress();
    println!(
        "accuracy after compression: {:.2}% (was {:.2}%)",
        100.0 * restored.accuracy(&test.x, &test.y),
        100.0 * base_acc
    );

    // what the bytes buy on real hardware: a wearable with 256 KiB SRAM
    let device = DeviceProfile::wearable();
    let fp32_cost = device.inference_cost(&infos_before, 4.0);
    let compressed_bytes_per_weight =
        r.final_bytes as f64 / infos_before.iter().map(|i| i.params as u64).sum::<u64>() as f64;
    let packed_cost = device.inference_cost(&infos_before, compressed_bytes_per_weight);
    println!("\n-- wearable energy per inference (memory traffic dominates) --");
    println!("fp32 model:       {:.3} µJ", 1e6 * fp32_cost.energy_j);
    println!(
        "compressed model: {:.3} µJ  ({:.1}× less)",
        1e6 * packed_cost.energy_j,
        fp32_cost.energy_j / packed_cost.energy_j
    );
    let battery = Battery::wearable();
    println!(
        "inferences per charge: {:.1}M (fp32) → {:.1}M (compressed)",
        battery.operations_remaining(fp32_cost.energy_j) as f64 / 1e6,
        battery.operations_remaining(packed_cost.energy_j) as f64 / 1e6,
    );
}
