//! DeepMood in action (§IV-A): passive mood monitoring from typing
//! dynamics, exactly the scenario the BiAffect study motivates.
//!
//! Generates a clinical cohort, trains the three fusion variants, and
//! then "monitors" one participant's held-out week of sessions.
//!
//! ```sh
//! cargo run --release --example mood_monitor
//! ```

use mdl_core::deepmood::{borrow_pairs, normalized_pairs, train_and_evaluate};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let cohort = BiAffectDataset::generate(
        &BiAffectConfig {
            participants: 20,
            sessions_per_participant: 50,
            mood_effect: 1.25,
            ..Default::default()
        },
        &mut rng,
    );
    let (train, test) = cohort.split(0.8, &mut rng);
    println!(
        "cohort: 20 participants, {} training sessions, {} held-out sessions",
        train.len(),
        test.len()
    );

    // compare the three fusion heads of Fig. 4
    for (name, fusion) in [
        ("fully connected (Eq. 2)", FusionKind::FullyConnected { hidden: 24 }),
        ("factorization machine (Eq. 3)", FusionKind::FactorizationMachine { factors: 6 }),
        ("multi-view machine (Eq. 4)", FusionKind::MultiViewMachine { factors: 6 }),
    ] {
        let eval = train_and_evaluate(
            &train,
            &test,
            &DeepMoodConfig {
                hidden_dim: 12,
                fusion,
                epochs: 14,
                learning_rate: 0.01,
                ..Default::default()
            },
            &mut rng,
        );
        println!(
            "DeepMood {name:<30} accuracy {:.2}%  macro-F1 {:.2}%",
            100.0 * eval.accuracy,
            100.0 * eval.macro_f1
        );
    }

    // monitor participant 0's held-out sessions with a fresh model
    let (norm, train_owned, _) = normalized_pairs(&train, &[]);
    let train_pairs = borrow_pairs(&train_owned);
    let mut model = DeepMood::new(
        &mdl_core::deepmood::biaffect_view_dims(),
        DeepMoodConfig { hidden_dim: 12, epochs: 14, ..Default::default() },
        &mut rng,
    );
    let _ = model.train(&train_pairs, &mut rng);

    println!("\nmonitoring participant 0 (per-session predictions):");
    let mut shown = 0;
    for s in test.iter().filter(|s| s.participant == 0).take(10) {
        let views = norm.apply(&s.session.views());
        let refs: Vec<&Matrix> = views.iter().collect();
        let pred = model.predict(&refs);
        let status = if pred == s.label { "✓" } else { "✗" };
        println!(
            "  session ({:>2} keys, {:>4.1}s): predicted {} / actual {}  {status}",
            s.session.keypress_count(),
            s.session.duration_secs,
            ["euthymic", "depressed"][pred],
            ["euthymic", "depressed"][s.label],
        );
        shown += 1;
    }
    if shown == 0 {
        println!("  (participant 0 had no held-out sessions in this split)");
    }
    println!(
        "\nthe prediction is per session (< 1 minute of typing); daily-level\n\
         estimates would ensemble all of a day's sessions, as the paper notes."
    );
}
