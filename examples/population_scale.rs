//! Population-scale federated simulation: 100 000 synthetic mobile
//! clients behind the `mdl-sim` event engine.
//!
//! Each client owns an availability chain (idle ∧ charging ∧ unmetered,
//! from its `mdl-mobile` profile), a faulty LTE-class link keyed by its
//! stable id, and an on-demand local dataset. Rounds sample a 1% cohort
//! of the currently eligible fleet, stream updates through the sharded
//! aggregator, and advance a virtual clock — so the whole run costs
//! O(cohort) memory and finishes in well under a second per round.
//!
//! ```sh
//! cargo run --release --example population_scale
//! ```

use mdl_core::prelude::*;

fn main() {
    const POPULATION: u64 = 100_000;
    const SEED: u64 = 2018;

    let task = PopulationTask::blobs(SEED);
    let mut pop = Population::new(PopulationSpec::mobile_mix(POPULATION, SEED));
    let cfg = SimConfig {
        rounds: 5,
        cohort: CohortSpec { fraction: 0.01, min_size: 64, max_size: 2_000 },
        faults: FaultPlan {
            dropout_prob: 0.1,
            straggler_prob: 0.1,
            straggler_slowdown: 2.0,
            flaky_prob: 0.05,
            flaky_loss: 0.25,
            partitions: Vec::new(),
        },
        loss_prob: 0.02,
        jitter_frac: 0.1,
        quorum_fraction: 0.5,
        // a two-level topology: cohorts upload through 32 edge
        // aggregators whose backhaul is Wi-Fi-class
        topology: Topology::TwoLevel { edges: 32, backhaul: NetworkProfile::wifi() },
        seed: SEED,
        ..SimConfig::default()
    };

    let obs = Obs::sim();
    let start = std::time::Instant::now();
    let (report, accuracy) =
        run_population_fedavg(&cfg, &mut pop, &task, Some(&obs)).expect("quorum reachable");
    let wall = start.elapsed();

    println!("{POPULATION} clients, {} rounds, two-level topology (32 edges)\n", cfg.rounds);
    println!("round  eligible  cohort  delivered  quorum  round_s");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>8}  {:>6}  {:>9}  {:>6}  {:>7.1}",
            r.round, r.eligible, r.cohort, r.delivered, r.quorum_met, r.round_s,
        );
    }

    let t = &report.transport;
    println!("\nfinal accuracy on held-out blobs: {:.2}%", 100.0 * accuracy);
    println!(
        "virtual fleet time: {:.1} s   wall time: {:.0} ms",
        report.sim_clock_s,
        1000.0 * wall.as_secs_f64()
    );
    println!("bytes up {}   bytes down {}   wasted {}", t.bytes_up, t.bytes_down, t.wasted_bytes);

    let snap = obs.snapshot();
    println!("\nobservability (sim.* / fed.*):");
    for (name, value) in
        snap.counters_with_prefix("sim.").into_iter().chain(snap.counters_with_prefix("fed."))
    {
        println!("  {name:<18} {value}");
    }
}
