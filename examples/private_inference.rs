//! ARDEN private split inference (§III-A, Fig. 3), step by step.
//!
//! Walks through the framework's lifecycle: pretrain → split & freeze →
//! noisy-train the cloud half → serve perturbed representations — and
//! contrasts the three serving strategies of Figs. 2–3.
//!
//! ```sh
//! cargo run --release --example private_inference
//! ```

use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(19);

    // 1. pretrain on public data (the service provider's side)
    let public = mdl_core::data::synthetic::synthetic_digits(1500, 0.08, &mut rng);
    let (train, test) = public.split(0.75, &mut rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 32, Activation::Relu, &mut rng));
    net.push(Dense::new(32, 32, Activation::Relu, &mut rng));
    net.push(Dense::new(32, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 30, ..Default::default() },
        &mut rng,
    );
    println!("pretrained model accuracy: {:.2}%", 100.0 * net.accuracy(&test.x, &test.y));

    // keep an intact copy for the deployment comparison
    let full_params = net.param_vector();
    let rebuild = |rng: &mut StdRng, params: &[f32]| {
        let mut n = Sequential::new();
        n.push(Dense::new(64, 32, Activation::Relu, rng));
        n.push(Dense::new(32, 32, Activation::Relu, rng));
        n.push(Dense::new(32, 10, Activation::Identity, rng));
        n.set_param_vector(params);
        n
    };

    // 2. split: one frozen layer stays on the phone
    let config =
        ArdenConfig { split_at: 1, nullification_rate: 0.2, noise_sigma: 0.4, clip_norm: 5.0 };
    let mut arden = Arden::from_pretrained(rebuild(&mut rng, &full_params), config);
    println!(
        "\nsplit after layer 1: {} B representation vs {} B raw input",
        arden.representation_bytes(),
        4 * 64
    );
    let before = arden.accuracy(&test.x, &test.y, &mut rng);
    println!("accuracy under perturbation (plain cloud net): {:.2}%", 100.0 * before);

    // 3. noisy training hardens the cloud half — the local half never changes
    let losses = arden.noisy_train(&train.x, &train.y, 30, 0.005, &mut rng);
    let after = arden.accuracy(&test.x, &test.y, &mut rng);
    println!(
        "after noisy training ({} epochs, loss {:.3}→{:.3}): {:.2}%",
        losses.len(),
        losses[0],
        losses.last().unwrap(),
        100.0 * after
    );
    println!("per-query (ε, δ=1e-5): ε = {:.1}", arden.privacy_epsilon(1e-5));

    // 4. the three serving strategies, costed on a mid-range phone on LTE
    println!("\n-- serving strategies (midrange phone, LTE) --");
    let full = rebuild(&mut rng, &full_params);
    let rows = compare_deployments(
        &full,
        &arden,
        &DeviceProfile::midrange_phone(),
        &DeviceProfile::cloud_server(),
        &NetworkProfile::lte(),
        4 * 64,
    );
    for row in rows {
        println!(
            "  {:<12} latency {:>8.3} ms  device energy {:>8.4} mJ  upload {:>4} B  ε={:<6}",
            row.strategy,
            1000.0 * row.cost.latency_s,
            1000.0 * row.cost.energy_j,
            row.upload_bytes,
            if row.epsilon.is_infinite() {
                "∞".to_string()
            } else {
                format!("{:.1}", row.epsilon)
            },
        );
    }
    println!(
        "\nthe split path keeps raw data on the phone, uploads a representation\n\
         smaller than the input, and the cloud model can be upgraded online\n\
         without touching the app — the transparency §III-A highlights."
    );
}
