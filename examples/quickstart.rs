//! Quickstart: the full mobile deep-learning lifecycle in one run.
//!
//! Trains a classifier with user-level differentially private federated
//! averaging, compresses it with the Deep Compression pipeline for
//! on-device use, prepares an ARDEN private split deployment, and prints
//! the placement economics — the paper's story end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // synthetic digit task distributed across 20 phones
    let data = mdl_core::data::synthetic::synthetic_digits(1200, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 20, Partition::Iid, &mut rng);
    println!("20 clients, {} training examples, {} test examples", train.len(), test.len());

    let config = PipelineConfig {
        spec: MlpSpec::new(vec![64, 64, 32, 10], 17),
        federated: DpFedConfig {
            rounds: 25,
            sample_prob: 0.8,
            local_epochs: 3,
            learning_rate: 0.15,
            clip_norm: 2.0,
            noise_multiplier: 0.3,
            ..Default::default()
        },
        compression: DeepCompressionConfig {
            sparsity: 0.7,
            quant_bits: 5,
            finetune: Some((3, 0.005)),
            prune_steps: 2,
        },
        arden: ArdenConfig {
            // split after the 32-unit bottleneck: the uploaded representation
            // is half the size of the raw input
            split_at: 2,
            nullification_rate: 0.1,
            noise_sigma: 0.3,
            clip_norm: 5.0,
        },
        device: DeviceProfile::midrange_phone(),
        network: NetworkProfile::wifi(),
        faults: FaultPlan::none(),
        obs: Some(Obs::wall()),
        population: None,
        rollout: None,
    };

    let report = run_pipeline(&config, &clients, &test, &mut rng);

    println!("\n-- training (§II) --");
    println!("DP-FedAvg accuracy:   {:.2}%", 100.0 * report.trained_accuracy);
    println!("user-level ε (δ=1e-5): {:.1}", report.training_epsilon);

    println!("\n-- compression (§III-B) --");
    println!("compression ratio:     {:.1}×", report.compression_ratio);
    println!("compressed accuracy:  {:.2}%", 100.0 * report.compressed_accuracy);

    println!("\n-- private split inference (§III-A) --");
    println!("ARDEN accuracy:       {:.2}%", 100.0 * report.arden_accuracy);
    println!("per-query ε:           {:.1}", report.arden_epsilon);

    println!("\n-- transport rehearsal (mdl-net) --");
    let t = &report.transport;
    println!(
        "delivered {}/{} rounds to {} devices  attempts {}  retries {}  timeouts {}  bytes down {}",
        t.delivered_rounds,
        t.probe_rounds,
        t.probe_clients,
        t.metrics.attempts,
        t.metrics.retries,
        t.metrics.timeouts,
        t.metrics.bytes_down,
    );

    println!("\n-- deployment economics (§III) --");
    for row in &report.deployments {
        println!(
            "{:<12} latency {:>8.3} ms  energy {:>8.4} mJ  upload {:>5} B  raw-data-leaves={}",
            row.strategy,
            1000.0 * row.cost.latency_s,
            1000.0 * row.cost.energy_j,
            row.upload_bytes,
            row.raw_data_leaves_device,
        );
    }

    println!("\n-- observability (mdl-obs) --");
    let snap = report.obs.expect("pipeline ran instrumented");
    for (depth, name) in snap.span_outline().iter().filter(|(depth, _)| *depth <= 1) {
        println!("{}{}", "  ".repeat(*depth), name);
    }
    println!(
        "net.rounds {}  net.delivered_bytes {}  serve.completed {}",
        snap.counter("net.rounds").unwrap_or(0),
        snap.counter("net.delivered_bytes").unwrap_or(0),
        snap.counter("serve.completed").unwrap_or(0),
    );
}
