//! The deployment tier end to end (§III): boot an inference server from a
//! saved artifact, route a heterogeneous client population through the
//! device cost model, batch the cloud-bound stream, hot-swap the model
//! under load, and shed an overload burst to the on-device early exit.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use mdl_core::nn::save_model;
use mdl_core::prelude::*;
use mdl_core::serve::LoadReport;
use std::time::Duration;

/// ~9.6M MACs per example: big enough that a wearable on Wi-Fi offloads
/// it to the cloud path. The weights are seeded random — the serving
/// mechanics (routing, batching, swapping, shedding) don't care.
fn model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 10, Activation::Identity, &mut rng));
    net
}

/// A tiny on-device head used when the cloud queue backs up.
fn exit_head() -> Sequential {
    let mut rng = StdRng::seed_from_u64(99);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 10, Activation::Identity, &mut rng));
    net
}

fn report_line(name: &str, r: &LoadReport) {
    println!(
        "{name}: {} done at {:.0} rps | p50 {:.1} ms, p99 {:.1} ms | \
         mean batch {:.1} | local {} / cloud {} / split {} / shed {}",
        r.completed,
        r.throughput_rps(),
        r.percentile(50.0).as_secs_f64() * 1e3,
        r.percentile(99.0).as_secs_f64() * 1e3,
        r.mean_batch_size,
        r.local,
        r.cloud,
        r.split,
        r.shed,
    );
}

fn main() {
    // the artifact a trainer would ship over the air (§III app-size path)
    let artifact = save_model(&mut model(7)).expect("model serializes");
    println!("saved artifact: {} bytes", artifact.len());

    let server = InferenceServer::from_artifact(
        &artifact,
        Some(exit_head()),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..Default::default()
        },
    )
    .expect("artifact decodes");
    let client = server.client();

    // --- placement-aware routing: one request per device class ---
    println!("\n-- routing decisions (per the mdl-mobile cost model) --");
    let fleet = [
        ("flagship / offline", DeviceClass::Flagship, NetworkClass::Offline),
        ("midrange / LTE", DeviceClass::Midrange, NetworkClass::Lte),
        ("wearable / Wi-Fi", DeviceClass::Wearable, NetworkClass::Wifi),
    ];
    let x = [0.4f32; 32];
    for (name, device, network) in fleet {
        let resp = client
            .submit(&x, ClientProfile { device, network })
            .expect("admitted")
            .recv()
            .expect("answered");
        println!(
            "  {name:<20} → {:?} (class {}, model v{})",
            resp.route, resp.argmax, resp.model_version
        );
    }

    // --- steady state: a closed-loop population of mixed clients ---
    let inputs = Matrix::from_fn(128, 32, |r, c| ((r * 32 + c) as f32 * 0.37).sin());
    let profiles: Vec<ClientProfile> =
        fleet.iter().map(|&(_, device, network)| ClientProfile { device, network }).collect();
    println!("\n-- closed loop, 256 requests over 8 client threads --");
    let steady = run_load(
        &client,
        &inputs,
        &LoadGenConfig {
            seed: 11,
            requests: 256,
            mode: LoadMode::Closed { concurrency: 8 },
            profiles,
            classes: vec![],
        },
    );
    report_line("steady", &steady);

    // --- hot swap: retrained weights go live without a restart ---
    let v2 = server.swap_artifact(&save_model(&mut model(8)).expect("serializes")).expect("valid");
    let resp = client
        .submit(&x, ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi })
        .expect("admitted")
        .recv()
        .expect("answered");
    println!(
        "\n-- hot swap --\nswapped to v{v2}; next answer served by model v{}",
        resp.model_version
    );

    // --- overload: an open-loop burst far beyond pool capacity ---
    println!("\n-- overload burst, 10k offered rps of cloud-bound wearables --");
    let burst = run_load(
        &client,
        &inputs,
        &LoadGenConfig {
            seed: 12,
            requests: 300,
            mode: LoadMode::Open { rps: 10_000.0 },
            profiles: vec![ClientProfile {
                device: DeviceClass::Wearable,
                network: NetworkClass::Wifi,
            }],
            classes: vec![],
        },
    );
    report_line("burst", &burst);
    println!(
        "{:.0}% of the burst shed to the early-exit head instead of queueing",
        burst.shed_rate() * 100.0
    );

    let m = server.metrics();
    println!(
        "\nserver totals: {} completed, {} batches, {} shed, {} swaps",
        m.completed,
        m.batches,
        m.shed,
        server.swap_count()
    );
    drop(client);
    server.shutdown();
}
