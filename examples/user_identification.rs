//! DEEPSERVICE in action (§IV-B): who is holding the phone?
//!
//! Enrols a small office of users, shows the Fig. 6 pattern analysis that
//! motivates biometric identification, runs the Table I comparison, and
//! finishes with the shared-phone (binary) scenario.
//!
//! ```sh
//! cargo run --release --example user_identification
//! ```

use mdl_core::deepservice::{analyze_top_users, format_patterns};
use mdl_core::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let office = KeystrokeDataset::generate(
        &KeystrokeConfig { users: 8, sessions_per_user: 100, ..Default::default() },
        &mut rng,
    );
    println!("enrolled 8 users × 100 sessions");

    // Fig. 6-style pattern analysis
    println!("\n-- multi-view typing signatures (top 5 active users) --");
    print!("{}", format_patterns(&analyze_top_users(&office, 5)));

    // Table I-style comparison on this cohort
    println!("\n-- identification accuracy (shallow features vs deep sequences) --");
    for row in table_one(&office, &mut rng) {
        println!(
            "  {:<14} accuracy {:>6.2}%  macro-F1 {:>6.2}%",
            row.method,
            100.0 * row.accuracy,
            100.0 * row.f1
        );
    }

    // the shared-phone scenario
    println!("\n-- shared phone: separating user 0 from user 1 --");
    let report = pairwise_identification(&office, 1, 12, &mut rng);
    let pair = &report.pairs[0];
    println!(
        "  pair {:?}: accuracy {:.2}%  F1 {:.2}%",
        pair.users,
        100.0 * pair.accuracy,
        100.0 * pair.f1
    );
    println!(
        "\nbiometric identification needs no account information and keeps\n\
         working when the user switches apps — the paper's §IV-B motivation."
    );
}
