//! Umbrella package for the `mobile-dl` workspace.
//!
//! See [`mdl_core`] for the high-level API; this package hosts the runnable
//! examples and the cross-crate integration test suite.

pub use mdl_core as core;
