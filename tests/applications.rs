//! Integration tests of the two applications (§IV) against the baseline
//! family — the cross-crate orderings the paper's evaluation rests on.

use mdl_core::deepmood::train_and_evaluate;
use mdl_core::prelude::*;

#[test]
fn deepmood_beats_majority_and_linear_baselines() {
    let mut rng = StdRng::seed_from_u64(9101);
    let cohort = BiAffectDataset::generate(
        &BiAffectConfig {
            participants: 16,
            sessions_per_participant: 40,
            mood_effect: 1.25,
            ..Default::default()
        },
        &mut rng,
    );
    let (train, test) = cohort.split(0.75, &mut rng);

    // shallow reference on basic features
    use mdl_core::data::typing::{featurize_session_basic, BASIC_FEATURE_DIM};
    let flat = |sessions: &[mdl_core::data::biaffect::MoodSession]| {
        let mut x = Matrix::zeros(sessions.len(), BASIC_FEATURE_DIM);
        let mut y = Vec::new();
        for (r, s) in sessions.iter().enumerate() {
            x.row_mut(r).copy_from_slice(&featurize_session_basic(&s.session));
            y.push(s.label);
        }
        Dataset::new(x, y, 2)
    };
    let mut train_flat = flat(&train);
    let mut test_flat = flat(&test);
    let (m, s) = train_flat.standardize();
    test_flat.apply_standardization(&m, &s);

    let mut majority = MajorityClass::new();
    let floor = fit_evaluate(&mut majority, &train_flat, &test_flat, &mut rng);
    let mut lr = LogisticRegression::new();
    let linear = fit_evaluate(&mut lr, &train_flat, &test_flat, &mut rng);

    let deep = train_and_evaluate(
        &train,
        &test,
        &DeepMoodConfig {
            hidden_dim: 10,
            fusion: FusionKind::FullyConnected { hidden: 24 },
            epochs: 12,
            ..Default::default()
        },
        &mut rng,
    );

    assert!(
        deep.accuracy > floor.accuracy + 0.1,
        "DeepMood {} must beat majority {}",
        deep.accuracy,
        floor.accuracy
    );
    assert!(
        deep.accuracy > linear.accuracy,
        "DeepMood {} must beat LR {}",
        deep.accuracy,
        linear.accuracy
    );
}

#[test]
fn deepservice_degrades_gracefully_with_more_users() {
    let mut rng = StdRng::seed_from_u64(9102);
    let accuracy_at = |users: usize, rng: &mut StdRng| {
        let cohort = KeystrokeDataset::generate(
            &KeystrokeConfig { users, sessions_per_user: 50, ..Default::default() },
            rng,
        );
        let (train, test) = cohort.split(0.75, rng);
        let mut cfg = mdl_core::deepservice::deepservice_config(users);
        cfg.epochs = 14;
        let (eval, _) = train_deepservice(&train, &test, &cfg, rng);
        eval.accuracy
    };
    let two = accuracy_at(2, &mut rng);
    let ten = accuracy_at(10, &mut rng);
    assert!(two > 0.8, "binary identification {two}");
    assert!(ten > 1.5 / 10.0 * 2.0, "10-way identification {ten} barely above chance");
    assert!(two > ten, "identification must get harder with more users: {two} vs {ten}");
}

#[test]
fn fig6_patterns_separate_users_that_deepservice_separates() {
    let mut rng = StdRng::seed_from_u64(9103);
    let cohort = KeystrokeDataset::generate(
        &KeystrokeConfig { users: 6, sessions_per_user: 30, ..Default::default() },
        &mut rng,
    );
    let patterns = mdl_core::deepservice::analyze_top_users(&cohort, 6);
    assert_eq!(patterns.len(), 6);
    // at least two users must differ noticeably in their typing signature
    let ikis: Vec<f32> = patterns.iter().map(|p| p.mean_iki).collect();
    let max = ikis.iter().cloned().fold(f32::MIN, f32::max);
    let min = ikis.iter().cloned().fold(f32::MAX, f32::min);
    assert!(max / min > 1.05, "users indistinguishable in IKI: {ikis:?}");
}

#[test]
fn table_one_ordering_holds_on_a_medium_cohort() {
    let mut rng = StdRng::seed_from_u64(9104);
    let cohort = KeystrokeDataset::generate(
        &KeystrokeConfig { users: 8, sessions_per_user: 80, ..Default::default() },
        &mut rng,
    );
    let rows = table_one(&cohort, &mut rng);
    let get = |name: &str| rows.iter().find(|r| r.method == name).unwrap().accuracy;
    // the load-bearing orderings of Table I (with slack for seed noise)
    assert!(
        get("RandomForest") > get("LR") - 0.02,
        "RF {} should not trail LR {} meaningfully",
        get("RandomForest"),
        get("LR")
    );
    assert!(
        get("DEEPSERVICE") > get("SVM"),
        "DEEPSERVICE {} must beat the linear floor {}",
        get("DEEPSERVICE"),
        get("SVM")
    );
    assert!(
        get("DEEPSERVICE") + 0.08 > get("XGBoost"),
        "DEEPSERVICE {} must at least be competitive with XGBoost {}",
        get("DEEPSERVICE"),
        get("XGBoost")
    );
}
