//! Cross-crate compression + deployment integration: every §III-B family
//! produces a runnable model whose device cost the mobile simulator can
//! price.

use mdl_core::compress::{factorize_network, BlockCirculant, CsrMatrix};
use mdl_core::nn::Layer as _;
use mdl_core::prelude::*;

fn trained(rng: &mut StdRng) -> (Sequential, Dataset, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(800, 0.08, rng);
    let (train, test) = data.split(0.75, rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 96, Activation::Relu, rng));
    net.push(Dense::new(96, 10, Activation::Identity, rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 20, ..Default::default() },
        rng,
    );
    (net, train, test)
}

#[test]
fn every_compression_family_yields_a_working_smaller_model() {
    let mut rng = StdRng::seed_from_u64(9301);
    let (mut net, train, test) = trained(&mut rng);
    let base_acc = net.accuracy(&test.x, &test.y);
    let base_params = net.num_params();
    assert!(base_acc > 0.8, "base {base_acc}");
    let params = net.param_vector();

    let rebuild = |rng: &mut StdRng| {
        let mut n = Sequential::new();
        n.push(Dense::new(64, 96, Activation::Relu, rng));
        n.push(Dense::new(96, 10, Activation::Identity, rng));
        n.set_param_vector(&params);
        n
    };

    // 1. deep compression
    let mut a = rebuild(&mut rng);
    let c = deep_compress(
        &mut a,
        Some((&train.x, &train.y)),
        &DeepCompressionConfig {
            sparsity: 0.7,
            quant_bits: 4,
            finetune: Some((3, 0.01)),
            prune_steps: 2,
        },
        &mut rng,
    );
    assert!(c.report.ratio() > 8.0);
    assert!(c.decompress().accuracy(&test.x, &test.y) > base_acc - 0.15);

    // 2. low-rank factorization at the intrinsic-energy rank
    let mut b = rebuild(&mut rng);
    let fact = factorize_network(&mut b, |d| {
        mdl_core::compress::rank_for_energy(d, 0.95).min(d.weight().rows().min(d.weight().cols()))
    });
    assert!(fact.accuracy(&test.x, &test.y) > base_acc - 0.25);

    // 3. distillation into a quarter-size student
    let mut teacher = rebuild(&mut rng);
    let mut student = Sequential::new();
    student.push(Dense::new(64, 24, Activation::Relu, &mut rng));
    student.push(Dense::new(24, 10, Activation::Identity, &mut rng));
    assert!(student.num_params() * 3 < base_params);
    let mut opt = Adam::new(0.01);
    let _ = distill(
        &mut teacher,
        &mut student,
        &mut opt,
        &train.x,
        &train.y,
        &DistillConfig { epochs: 30, ..Default::default() },
        &mut rng,
    );
    assert!(student.accuracy(&test.x, &test.y) > base_acc - 0.15);

    // 4. block-circulant retrain
    let mut circ = Sequential::new();
    circ.push(BlockCirculant::new(64, 96, 16, Activation::Relu, &mut rng));
    circ.push(Dense::new(96, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut circ,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 25, ..Default::default() },
        &mut rng,
    );
    assert!(circ.info().params < base_params / 3);
    assert!(circ.accuracy(&test.x, &test.y) > base_acc - 0.2);
}

#[test]
fn compressed_bytes_lower_device_energy() {
    let mut rng = StdRng::seed_from_u64(9302);
    let (net, _, _) = trained(&mut rng);
    let infos = net.layer_infos();
    let device = DeviceProfile::wearable();
    let fp32 = device.inference_cost(&infos, 4.0);
    let packed = device.inference_cost(&infos, 0.5);
    assert!(packed.energy_j < fp32.energy_j, "fewer bytes must cost less energy");
    assert_eq!(packed.latency_s, fp32.latency_s, "compute latency unchanged by storage");
}

#[test]
fn csr_inference_is_exact_for_pruned_layers() {
    let mut rng = StdRng::seed_from_u64(9303);
    let (mut net, _, test) = trained(&mut rng);
    let _ = mdl_core::compress::prune_network(&mut net, 0.8);
    // layer 1 as CSR must match the dense pruned layer exactly
    let dense_out = {
        let l = net.layers_mut()[0].as_any_mut().downcast_mut::<Dense>().unwrap();
        let w = l.weight().clone();
        let csr = CsrMatrix::from_dense(&w);
        let dense = test.x.matmul(&w);
        let sparse = csr.matmul_into(&test.x);
        assert!(sparse.approx_eq(&dense, 1e-5));
        assert!(csr.sparsity() > 0.75);
        dense
    };
    assert!(dense_out.all_finite());
}

#[test]
fn placements_agree_with_manual_cost_model() {
    let mut rng = StdRng::seed_from_u64(9304);
    let (net, _, _) = trained(&mut rng);
    let device = DeviceProfile::midrange_phone();
    let cloud = DeviceProfile::cloud_server();
    let network = NetworkProfile::wifi();
    let scenario = Scenario {
        layers: net.layer_infos(),
        input_bytes: 4 * 64,
        result_bytes: 4 * 10,
        bytes_per_weight: 4.0,
    };
    let on_device = placement_cost(Placement::OnDevice, &scenario, &device, &cloud, &network);
    let manual = device.inference_cost(&scenario.layers, 4.0);
    assert_eq!(on_device.latency_s, manual.latency_s);
    assert_eq!(on_device.energy_j, manual.energy_j);

    let cloud_cost = placement_cost(Placement::Cloud, &scenario, &device, &cloud, &network);
    let radio = network.round_trip_cost(scenario.input_bytes, scenario.result_bytes);
    assert!((cloud_cost.energy_j - radio.energy_j).abs() < 1e-12);
}

use mdl_core::mobile::placement_cost;
