//! Reproducibility guarantees: every stochastic component is a pure
//! function of its seed. These invariants keep every table in
//! EXPERIMENTS.md regenerable bit-for-bit.

use mdl_core::prelude::*;

#[test]
fn data_generators_are_seed_deterministic() {
    let gen_biaffect = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        BiAffectDataset::generate(
            &BiAffectConfig { participants: 3, sessions_per_participant: 5, ..Default::default() },
            &mut rng,
        )
    };
    assert_eq!(gen_biaffect(1), gen_biaffect(1));
    assert_ne!(gen_biaffect(1), gen_biaffect(2));

    let gen_keystroke = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        KeystrokeDataset::generate(
            &KeystrokeConfig { users: 3, sessions_per_user: 4, ..Default::default() },
            &mut rng,
        )
    };
    assert_eq!(gen_keystroke(5), gen_keystroke(5));

    let gen_digits = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        mdl_core::data::synthetic::synthetic_digits(50, 0.1, &mut rng)
    };
    assert_eq!(gen_digits(9), gen_digits(9));
}

#[test]
fn training_is_seed_deterministic() {
    let train = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = mdl_core::data::synthetic::gaussian_blobs(120, 3, 0.4, &mut rng);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, Activation::Relu, &mut rng));
        net.push(Dense::new(8, 3, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &data.x,
            &data.y,
            &TrainConfig { epochs: 5, ..Default::default() },
            &mut rng,
        );
        net.param_vector()
    };
    assert_eq!(train(42), train(42));
    assert_ne!(train(42), train(43));
}

/// The blocked GEMM kernel partitions work over row panels without
/// changing any per-element accumulation order, so training results must
/// be byte-for-byte independent of the kernel thread count.
#[test]
fn training_is_kernel_thread_count_invariant() {
    let train = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(42);
        let data = mdl_core::data::synthetic::gaussian_blobs(150, 3, 0.4, &mut rng);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 40, Activation::Relu, &mut rng));
        net.push(Dense::new(40, 3, Activation::Identity, &mut rng));
        let mut opt = Adam::new(0.01);
        let _ = fit_classifier(
            &mut net,
            &mut opt,
            &data.x,
            &data.y,
            &TrainConfig { epochs: 4, kernel_threads: Some(threads), ..Default::default() },
            &mut rng,
        );
        net.param_vector().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
    };
    let reference = train(1);
    for threads in [2, 4, 8] {
        assert_eq!(reference, train(threads), "weights diverged at {threads} kernel threads");
    }
    mdl_core::tensor::kernel::set_threads(1);
}

#[test]
fn federated_runs_are_seed_deterministic() {
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = mdl_core::data::synthetic::gaussian_blobs(200, 2, 0.4, &mut rng);
        let (train, test) = data.split(0.8, &mut rng);
        let clients = partition_dataset(&train, 4, Partition::Iid, &mut rng);
        let spec = MlpSpec::new(vec![2, 6, 2], 1);
        let availability = AvailabilityModel::always_available(4);
        mdl_core::federated::run_federated(
            &spec,
            &clients,
            &test,
            &FedConfig { rounds: 5, ..Default::default() },
            &availability,
            &mut rng,
        )
        .final_params
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn compression_is_seed_deterministic() {
    let compress = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(16, 16, Activation::Relu, &mut rng));
        net.push(Dense::new(16, 4, Activation::Identity, &mut rng));
        let c = deep_compress(
            &mut net,
            None,
            &DeepCompressionConfig { sparsity: 0.7, quant_bits: 4, finetune: None, prune_steps: 1 },
            &mut rng,
        );
        (c.report.final_bytes, c.decompress().param_vector())
    };
    assert_eq!(compress(3), compress(3));
}

#[test]
fn deepmood_predictions_are_seed_deterministic() {
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cohort = BiAffectDataset::generate(
            &BiAffectConfig { participants: 3, sessions_per_participant: 10, ..Default::default() },
            &mut rng,
        );
        let (train, test) = cohort.split(0.7, &mut rng);
        let eval = mdl_core::deepmood::train_and_evaluate(
            &train,
            &test,
            &DeepMoodConfig { epochs: 2, hidden_dim: 4, ..Default::default() },
            &mut rng,
        );
        eval.accuracy
    };
    assert_eq!(run(11), run(11));
}
