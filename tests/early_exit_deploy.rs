//! Integration of the early-exit distributed DNN (reference [25]) with the
//! device cost model: the exit threshold becomes a dial between on-device
//! economy and cloud accuracy.

use mdl_core::prelude::*;
use mdl_core::split::EarlyExitNetwork;

fn trained_system(rng: &mut StdRng) -> (EarlyExitNetwork, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(1000, 0.08, rng);
    let (train, test) = data.split(0.75, rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 32, Activation::Relu, rng));
    net.push(Dense::new(32, 32, Activation::Relu, rng));
    net.push(Dense::new(32, 10, Activation::Identity, rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 25, ..Default::default() },
        rng,
    );
    let mut ee = EarlyExitNetwork::from_pretrained(net, 1, 10, rng);
    let _ = ee.train_exit(&train.x, &train.y, 40, 0.01, rng);
    (ee, test)
}

#[test]
fn threshold_sweeps_out_a_monotone_upload_curve() {
    let mut rng = StdRng::seed_from_u64(9501);
    let (mut ee, test) = trained_system(&mut rng);
    let mut last_upload = u64::MAX;
    let mut last_local = -1.0;
    for &threshold in &[0.02, 0.1, 0.3, 0.6, 0.95] {
        let report = ee.infer_adaptive(&test.x, &test.y, threshold);
        assert!(
            report.upload_bytes <= last_upload,
            "looser thresholds must upload less: {} after {}",
            report.upload_bytes,
            last_upload
        );
        assert!(report.local_fraction >= last_local, "looser thresholds must answer more locally");
        assert!(report.accuracy > 0.6, "accuracy collapsed at τ={threshold}: {report:?}");
        last_upload = report.upload_bytes;
        last_local = report.local_fraction;
    }
}

#[test]
fn escalated_examples_pay_radio_cost_but_buy_accuracy() {
    let mut rng = StdRng::seed_from_u64(9502);
    let (mut ee, test) = trained_system(&mut rng);
    let all_cloud = ee.infer_adaptive(&test.x, &test.y, 0.0);
    let mixed = ee.infer_adaptive(&test.x, &test.y, 0.35);

    // escalating everything is the accuracy ceiling
    assert!(all_cloud.accuracy >= mixed.accuracy - 0.05);

    // cost the uploads over LTE: mixed mode saves real device energy
    let radio = NetworkProfile::lte();
    let cloud_cost = radio.round_trip_cost(all_cloud.upload_bytes, 0);
    let mixed_cost = radio.round_trip_cost(mixed.upload_bytes, 0);
    assert!(
        mixed_cost.energy_j < cloud_cost.energy_j,
        "partial escalation must cost less radio energy: {} vs {}",
        mixed_cost.energy_j,
        cloud_cost.energy_j
    );

    // and a battery sees the difference
    let mut always = Battery::typical_phone();
    let mut adaptive = Battery::typical_phone();
    for _ in 0..10_000 {
        always.drain(cloud_cost.energy_j / test.len() as f64);
        adaptive.drain(mixed_cost.energy_j / test.len() as f64);
    }
    assert!(adaptive.remaining_fraction() > always.remaining_fraction());
}

#[test]
fn early_exit_composes_with_model_serialisation() {
    use mdl_core::nn::{load_model, save_model};
    let mut rng = StdRng::seed_from_u64(9503);
    let data = mdl_core::data::synthetic::synthetic_digits(400, 0.08, &mut rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 16, Activation::Relu, &mut rng));
    net.push(Dense::new(16, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &data.x,
        &data.y,
        &TrainConfig { epochs: 10, ..Default::default() },
        &mut rng,
    );
    // ship the full model, then build the exit system device-side
    let bytes = save_model(&mut net).expect("saveable");
    let shipped = load_model(&bytes).expect("loadable");
    let mut ee = EarlyExitNetwork::from_pretrained(shipped, 1, 10, &mut rng);
    let _ = ee.train_exit(&data.x, &data.y, 20, 0.01, &mut rng);
    let report = ee.infer_adaptive(&data.x, &data.y, 0.4);
    assert!(report.accuracy > 0.6, "{report:?}");
    assert_eq!(ee.classes(), 10);
}
