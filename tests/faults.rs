//! Fault-tolerance integration: federated training over the `mdl-net`
//! fabric keeps converging under dropout, reproduces bit-for-bit from a
//! seed, and fails fast (not hangs) when quorum is unreachable.

use mdl_core::net::{NetError, PartitionWindow};
use mdl_core::prelude::*;

fn digits_clients(rng: &mut StdRng) -> (Vec<Dataset>, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(800, 0.08, rng);
    let (train, test) = data.split(0.8, rng);
    (partition_dataset(&train, 10, Partition::Iid, rng), test)
}

fn fed_config() -> FedConfig {
    FedConfig {
        rounds: 15,
        client_fraction: 1.0,
        learning_rate: 0.2,
        local_epochs: 3,
        ..Default::default()
    }
}

fn dropout_fabric(seed: u64) -> Fabric {
    let config = FabricConfig {
        faults: FaultPlan { dropout_prob: 0.2, ..FaultPlan::none() },
        quorum_fraction: 0.5,
        max_failed_rounds: 5,
        ..FabricConfig::ideal()
    };
    Fabric::new(10, config, seed)
}

#[test]
fn dropout_run_converges_near_the_fault_free_run() {
    let mut rng = StdRng::seed_from_u64(77);
    let (clients, test) = digits_clients(&mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(10);

    let mut clean_rng = StdRng::seed_from_u64(5);
    let clean = run_federated(&spec, &clients, &test, &fed_config(), &availability, &mut clean_rng);

    let mut faulty_rng = StdRng::seed_from_u64(5);
    let mut fabric = dropout_fabric(13);
    let faulty = run_federated_over(
        &spec,
        &clients,
        &test,
        &fed_config(),
        &availability,
        &mut fabric,
        &mut faulty_rng,
    )
    .expect("a 50% quorum is reachable under 20% dropout");

    assert!(faulty.transport.drops > 0, "the fault plan must actually fire");
    assert!(
        clean.final_accuracy() - faulty.final_accuracy() < 0.05,
        "20% dropout may cost at most 5 accuracy points: clean {} vs faulty {}",
        clean.final_accuracy(),
        faulty.final_accuracy()
    );
}

#[test]
fn identical_seeds_give_bit_identical_transport() {
    let mut data_rng = StdRng::seed_from_u64(77);
    let (clients, test) = digits_clients(&mut data_rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(10);

    let run = || {
        let mut rng = StdRng::seed_from_u64(5);
        let mut fabric = dropout_fabric(13);
        run_federated_over(
            &spec,
            &clients,
            &test,
            &fed_config(),
            &availability,
            &mut fabric,
            &mut rng,
        )
        .expect("quorum reachable")
    };
    let a = run();
    let b = run();
    assert_eq!(a.transport, b.transport, "TransportMetrics must be bit-identical");
    assert_eq!(a.final_params, b.final_params, "and so must the model");
    assert_eq!(a.ledger, b.ledger);
}

#[test]
fn unreachable_quorum_is_a_typed_error_not_a_hang() {
    let mut rng = StdRng::seed_from_u64(77);
    let (clients, test) = digits_clients(&mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(10);

    // every client partitioned away for the whole run
    let config = FabricConfig {
        faults: FaultPlan {
            partitions: vec![PartitionWindow {
                from_round: 1,
                until_round: usize::MAX,
                clients: vec![],
            }],
            ..FaultPlan::none()
        },
        quorum_fraction: 0.5,
        max_failed_rounds: 2,
        ..FabricConfig::ideal()
    };
    let mut fabric = Fabric::new(10, config, 3);
    let err = run_federated_over(
        &spec,
        &clients,
        &test,
        &FedConfig { rounds: 100, ..fed_config() },
        &availability,
        &mut fabric,
        &mut rng,
    )
    .expect_err("a fully partitioned cohort can never aggregate");
    match err {
        NetError::QuorumUnreachable { round, needed, got } => {
            assert_eq!(round, 2, "fails after max_failed_rounds misses, not after 100 rounds");
            assert!(needed > 0);
            assert_eq!(got, 0);
        }
        other => panic!("expected QuorumUnreachable, got {other:?}"),
    }
}
