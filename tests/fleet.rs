//! Fleet lifecycle integration: resumable delta distribution over faulty
//! links, staged rollout health gates, and A/B rollback — the `mdl-fleet`
//! acceptance surface.
//!
//! The property tests pin the transfer layer's two core contracts:
//! every device that completes reassembles the payload byte-for-byte no
//! matter how many partitions and stragglers interrupted it, and the
//! fabric's byte ledger never double-counts a resumed chunk.

use mdl_fleet::{distribute, run_rollout, ChunkConfig, RolloutConfig};
use mdl_net::{Fabric, FabricConfig, FaultPlan, LinkConfig, PartitionWindow};
use mdl_nn::{Activation, Dense, ParamVector, Sequential};
use mdl_obs::Obs;
use mdl_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A lossy LTE-class fabric with a hard partition window and stragglers —
/// the adversarial schedule the resumable transfer must survive.
fn faulty_fabric(clients: usize, loss: f64, partitioned: Vec<usize>, seed: u64) -> Fabric {
    let cfg = FabricConfig {
        faults: FaultPlan {
            straggler_prob: 0.2,
            straggler_slowdown: 4.0,
            flaky_prob: 0.5,
            flaky_loss: loss,
            partitions: vec![PartitionWindow {
                from_round: 1,
                until_round: 3,
                clients: partitioned,
            }],
            ..FaultPlan::none()
        },
        ..FabricConfig::faulty(LinkConfig::clean(mdl_mobile::NetworkProfile::lte()))
    };
    Fabric::new(clients, cfg, seed)
}

proptest! {
    /// Resumable chunked transfer over a faulty link delivers
    /// byte-identical payloads to every device, across partitions and
    /// stragglers, and the fabric ledger counts every delivered byte
    /// exactly once (`net.delivered_bytes` never double-counts a chunk
    /// that was re-entered after a resume).
    #[test]
    fn faulty_transfer_delivers_exact_bytes_and_never_double_counts(
        payload in prop::collection::vec(any::<u8>(), 1..2048),
        loss in 0.05f64..0.35,
        partition_mask in any::<u8>(),
        seed in 0u64..1 << 16,
    ) {
        let clients = 6;
        let partitioned: Vec<usize> =
            (0..clients).filter(|c| partition_mask & (1 << c) != 0).collect();
        let obs = Obs::sim();
        let mut fabric = faulty_fabric(clients, loss, partitioned, seed);
        fabric.attach_obs(obs.clone());
        let cfg = ChunkConfig {
            chunk_bytes: 128,
            max_rounds: 256,
            retry_budget: u32::MAX, // the identity contract, not the budget, is under test
            collect_payloads: true,
            ..ChunkConfig::default()
        };
        let report = distribute(&mut fabric, &payload, &cfg, Some(&obs));

        // everyone eventually completes, and bit-exactly
        prop_assert_eq!(report.completed, clients);
        prop_assert!(report.all_bit_identical());
        for got in report.payloads.as_ref().expect("collect_payloads was set") {
            prop_assert_eq!(got, &payload);
        }

        // no double-counting: the fabric's downstream ledger equals the
        // distinct payload bytes (failures land in wasted_bytes instead),
        // and the obs export tells the same story
        let distinct = report.delivered_distinct_bytes();
        prop_assert_eq!(distinct, payload.len() as u64 * clients as u64);
        prop_assert_eq!(report.transport.bytes_down, distinct);
        let snap = obs.snapshot();
        prop_assert_eq!(snap.counter("fleet.delivered_bytes"), Some(distinct));
        prop_assert_eq!(
            snap.counter("net.delivered_bytes"),
            Some(report.transport.bytes_up + report.transport.bytes_down)
        );
    }

    /// The transfer is a pure function of (payload, fabric seed, config):
    /// re-running it over an identically seeded fabric reproduces the
    /// report bit-for-bit, resumes and all.
    #[test]
    fn faulty_transfer_is_deterministic(
        payload in prop::collection::vec(any::<u8>(), 1..1024),
        seed in 0u64..1 << 16,
    ) {
        let run = || {
            let mut fabric = faulty_fabric(5, 0.3, vec![0, 2], seed);
            let cfg = ChunkConfig { chunk_bytes: 64, retry_budget: u32::MAX, ..ChunkConfig::default() };
            distribute(&mut fabric, &payload, &cfg, None)
        };
        prop_assert_eq!(run(), run());
    }
}

// -- staged rollout acceptance ---------------------------------------------

fn net(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Sequential::new();
    n.push(Dense::new(8, 16, Activation::Relu, &mut rng));
    n.push(Dense::new(16, 4, Activation::Identity, &mut rng));
    n
}

fn probe() -> (Matrix, Vec<usize>) {
    let x = Matrix::from_fn(40, 8, |r, c| ((r * 7 + c * 3) % 17) as f32 / 17.0 - 0.5);
    let y: Vec<usize> = (0..40).map(|r| r % 4).collect();
    (x, y)
}

/// Base plus a lightly fine-tuned candidate sharing its quantization
/// grid, so the delta takes the compact sparse-coded path.
fn versions() -> (Sequential, Sequential) {
    let mut base = net(11);
    let params = base.param_vector();
    let grid = mdl_compress::uniform_codebook(&params, 64);
    base.set_param_vector(&mdl_compress::snap_to_codebook(&params, &grid));
    let mut candidate = net(11);
    let nudged: Vec<f32> =
        params.iter().enumerate().map(|(i, &v)| if i % 11 == 0 { v + 0.08 } else { v }).collect();
    candidate.set_param_vector(&mdl_compress::snap_to_codebook(&nudged, &grid));
    (base, candidate)
}

fn faulty_rollout_config(fleet: u64, seed: u64) -> RolloutConfig {
    let mut cfg = RolloutConfig::staged(fleet, seed);
    cfg.fabric = FabricConfig {
        faults: FaultPlan { flaky_prob: 0.4, flaky_loss: 0.25, ..FaultPlan::none() },
        ..FabricConfig::faulty(LinkConfig::clean(mdl_mobile::NetworkProfile::lte()))
    };
    cfg.chunk.retry_budget = 64;
    cfg
}

#[test]
fn healthy_rollout_over_faulty_lte_reaches_the_whole_fleet() {
    let (mut base, mut candidate) = versions();
    let (x, y) = probe();
    let report =
        run_rollout(&mut base, &mut candidate, &x, &y, &faulty_rollout_config(120, 5), None);

    assert!(report.completed, "gates: {:?}", report.stages.last().map(|s| &s.gate.failures));
    assert!(!report.rolled_back);
    assert_eq!(report.stages.len(), 3, "canary, pilot, fleet");
    assert_eq!(report.serving_version, report.candidate_version);
    assert_eq!(report.reverts, 0);
    // the delta ships far fewer bytes than a full checkpoint
    assert!(
        report.bytes_ratio() >= 3.0,
        "delta {}B vs full {}B ({:.2}x, mode {})",
        report.delta_bytes,
        report.full_bytes,
        report.bytes_ratio(),
        report.delta_mode
    );
    // every stage finished within its retry budget
    for stage in &report.stages {
        assert_eq!(stage.completed, stage.cohort, "stage {}: {:?}", stage.name, stage.gate);
        assert_eq!(stage.exhausted, 0);
    }
}

#[test]
fn injected_regression_is_caught_at_the_canary_and_rolled_back() {
    let (mut base, _) = versions();
    let mut broken = net(11);
    let n = broken.num_params();
    broken.set_param_vector(&vec![0.0; n]);
    let (x, y) = probe();
    let obs = Obs::sim();
    let report =
        run_rollout(&mut base, &mut broken, &x, &y, &faulty_rollout_config(120, 5), Some(&obs));

    assert!(report.rolled_back && !report.completed);
    assert!(report.ab.flagged, "the A/B diff must flag the regression");
    assert_eq!(report.stages.len(), 1, "the canary gate stops the ladder");
    assert!(!report.stages[0].gate.passed);
    assert_eq!(report.serving_version, report.base_version, "serving reverted to the pin");
    assert_eq!(report.reverts, 1, "exactly one revert");
    let snap = obs.snapshot();
    assert_eq!(snap.counter("fleet.rollbacks"), Some(1));
    assert_eq!(snap.counter("fleet.stages_passed"), None, "no stage passed");
}

#[test]
fn rollout_reports_are_bit_reproducible() {
    let run = || {
        let (mut base, mut candidate) = versions();
        let (x, y) = probe();
        run_rollout(&mut base, &mut candidate, &x, &y, &faulty_rollout_config(150, 77), None)
    };
    assert_eq!(run(), run());
}
