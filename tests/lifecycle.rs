//! End-to-end lifecycle integration: the full train → compress → deploy
//! pipeline spanning every crate in the workspace.

use mdl_core::prelude::*;

fn digits_clients(n: usize, clients: usize, rng: &mut StdRng) -> (Vec<Dataset>, Dataset) {
    let data = mdl_core::data::synthetic::synthetic_digits(n, 0.08, rng);
    let (train, test) = data.split(0.8, rng);
    (partition_dataset(&train, clients, Partition::Iid, rng), test)
}

#[test]
fn pipeline_end_to_end_under_non_iid_data() {
    let mut rng = StdRng::seed_from_u64(9001);
    let data = mdl_core::data::synthetic::synthetic_digits(1000, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 16, Partition::Dirichlet(0.5), &mut rng);

    let config = PipelineConfig {
        spec: MlpSpec::new(vec![64, 48, 24, 10], 3),
        federated: DpFedConfig {
            rounds: 20,
            sample_prob: 0.8,
            local_epochs: 3,
            learning_rate: 0.15,
            clip_norm: 2.0,
            noise_multiplier: 0.2,
            ..Default::default()
        },
        compression: DeepCompressionConfig {
            sparsity: 0.6,
            quant_bits: 5,
            finetune: Some((3, 0.005)),
            prune_steps: 2,
        },
        arden: ArdenConfig {
            split_at: 1,
            nullification_rate: 0.1,
            noise_sigma: 0.3,
            clip_norm: 5.0,
        },
        device: DeviceProfile::flagship_phone(),
        network: NetworkProfile::lte(),
        faults: FaultPlan::lossy_cohort(),
        obs: None,
        population: None,
        rollout: None,
    };
    let report = run_pipeline(&config, &clients, &test, &mut rng);

    // the non-IID partition should still train a usable model
    assert!(report.trained_accuracy > 0.55, "trained {}", report.trained_accuracy);
    // every stage reports coherent artefacts
    assert!(report.compression_ratio > 4.0);
    assert!(report.compressed_accuracy > 0.4);
    assert!(report.training_epsilon.is_finite());
    assert_eq!(report.deployments.len(), 3);
    // the faulty-transport rehearsal ran and moved real bytes
    assert!(report.transport.metrics.attempts > 0);
    assert!(report.transport.delivered_rounds > 0);
    // the split row keeps data private at finite epsilon
    let split = report.deployments.iter().find(|r| r.strategy == "arden-split").unwrap();
    assert!(!split.raw_data_leaves_device && split.epsilon.is_finite());
}

#[test]
fn federated_then_compressed_model_still_classifies() {
    let mut rng = StdRng::seed_from_u64(9002);
    let (clients, test) = digits_clients(800, 10, &mut rng);
    let spec = MlpSpec::new(vec![64, 64, 10], 5);
    let availability = AvailabilityModel::always_available(10);
    let run = run_federated(&clients, &test, &spec, &availability, &mut rng);
    assert!(run.0 > 0.7, "federated accuracy {}", run.0);

    // compress the federated model and verify the codec round-trips
    let mut model = spec.build_with(&run.1);
    let c = deep_compress(
        &mut model,
        None,
        &DeepCompressionConfig { sparsity: 0.5, quant_bits: 5, finetune: None, prune_steps: 1 },
        &mut rng,
    );
    let mut restored = c.decompress();
    let acc = restored.accuracy(&test.x, &test.y);
    assert!(acc > 0.55, "compressed accuracy {acc}");
    // the restored net agrees with the quantized weights bit-for-bit
    for (layer, compressed) in restored.layers_mut().iter_mut().zip(c.layers.iter()) {
        let dense = layer.as_any_mut().downcast_mut::<Dense>().unwrap();
        assert!(dense.weight().approx_eq(&compressed.weights.dequantize(), 0.0));
    }
}

// helper wrapping run_federated with a simpler signature for this test file
fn run_federated(
    clients: &[Dataset],
    test: &Dataset,
    spec: &MlpSpec,
    availability: &AvailabilityModel,
    rng: &mut StdRng,
) -> (f64, Vec<f32>) {
    let run = mdl_core::federated::run_federated(
        spec,
        clients,
        test,
        &FedConfig {
            rounds: 15,
            client_fraction: 0.5,
            local_epochs: 3,
            learning_rate: 0.2,
            ..Default::default()
        },
        availability,
        rng,
    );
    (run.final_accuracy(), run.final_params)
}

#[test]
fn availability_throttles_participation() {
    let mut rng = StdRng::seed_from_u64(9003);
    let (clients, test) = digits_clients(600, 12, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 5);

    let always = AvailabilityModel::always_available(12);
    let overnight = AvailabilityModel::overnight(12);
    let cfg = FedConfig { rounds: 10, client_fraction: 1.0, ..Default::default() };
    let run_always =
        mdl_core::federated::run_federated(&spec, &clients, &test, &cfg, &always, &mut rng);
    let run_night =
        mdl_core::federated::run_federated(&spec, &clients, &test, &cfg, &overnight, &mut rng);

    let avg = |r: &mdl_core::federated::FedRun| {
        r.history.iter().map(|h| h.participants).sum::<usize>() as f64
            / r.history.len().max(1) as f64
    };
    assert!(
        avg(&run_night) < avg(&run_always),
        "eligibility policy must reduce cohort sizes: {} vs {}",
        avg(&run_night),
        avg(&run_always)
    );
}

#[test]
fn failed_gate_rolls_serving_back_to_the_pinned_base() {
    let mut rng = StdRng::seed_from_u64(9004);
    let mut base = Sequential::new();
    base.push(Dense::new(8, 16, Activation::Relu, &mut rng));
    base.push(Dense::new(16, 4, Activation::Identity, &mut rng));
    let mut broken = Sequential::new();
    broken.push(Dense::new(8, 16, Activation::Relu, &mut rng));
    broken.push(Dense::new(16, 4, Activation::Identity, &mut rng));
    // the injected regression: a zeroed classifier
    let n = broken.num_params();
    broken.set_param_vector(&vec![0.0; n]);

    let obs = Obs::sim();
    let artifact = mdl_core::nn::save_model(&mut base).expect("dense stacks serialize");
    let server = InferenceServer::from_artifact(
        &artifact,
        None,
        ServeConfig { workers: 1, obs: Some(obs.clone()), ..Default::default() },
    )
    .expect("own artifact loads");

    // ship the candidate: pin the known-good version, hot-swap the new one
    let pinned = server.pin_current();
    let candidate = server
        .swap_artifact(&mdl_core::nn::save_model(&mut broken).expect("serializes"))
        .expect("own artifact loads");
    assert_eq!(server.version(), candidate);

    // the health gate: A/B the pinned base against the live candidate
    let probe_x = Matrix::from_fn(32, 8, |r, c| ((r * 5 + c) % 9) as f32 / 9.0 - 0.5);
    let probe_y: Vec<usize> = (0..32).map(|r| r % 4).collect();
    let verdict = ab_compare(&base, &broken, &probe_x, &probe_y, 0.05);
    assert!(verdict.flagged, "the regression must trip the gate");

    // failed gate → deterministic rollback to the pin
    assert_eq!(server.rollback(), Some(pinned));
    assert_eq!(server.version(), pinned, "serving resolves to the pinned base");
    let response = server
        .client()
        .submit(
            &[0.25; 8],
            ClientProfile { device: DeviceClass::Midrange, network: NetworkClass::Wifi },
        )
        .expect("server is live")
        .recv()
        .expect("response arrives");
    assert_eq!(response.model_version, pinned, "requests are answered by the pinned version");

    // the serve.* ledger shows exactly one swap and exactly one revert
    assert_eq!(server.swap_count(), 1);
    assert_eq!(server.revert_count(), 1);
    server.shutdown();
    let snap = obs.snapshot();
    assert_eq!(snap.counter("serve.swaps"), Some(1));
    assert_eq!(snap.counter("serve.reverts"), Some(1), "exactly one revert recorded");
}
