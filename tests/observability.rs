//! Golden-trace regression of the observability layer: a tiny seeded
//! training run plus a short serve session under the simulated clock must
//! export a bit-identical [`ObsSnapshot`] — same span tree, same counter
//! values, same JSON bytes — on every run, on every machine.
//!
//! To update the checked-in golden after an intentional change:
//!
//! ```text
//! MDL_UPDATE_GOLDEN=1 cargo test --test observability
//! git diff tests/golden/observability.json   # review, then commit
//! ```

use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use std::sync::Mutex;
use std::time::Duration;

/// `kernel::set_threads` is process-global; tests that touch it serialize.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

const GOLDEN_PATH: &str = "tests/golden/observability.json";

fn tiny_train(obs: &Obs) {
    let mut rng = StdRng::seed_from_u64(7);
    let data = mdl_core::data::synthetic::gaussian_blobs(24, 3, 0.5, &mut rng);
    let mut model = Sequential::new();
    let mut net_rng = StdRng::seed_from_u64(8);
    model.push(Dense::new(2, 8, Activation::Relu, &mut net_rng));
    model.push(Dense::new(8, 3, Activation::Identity, &mut net_rng));
    let mut opt = Sgd::new(0.1);
    let mut fit_rng = StdRng::seed_from_u64(9);
    let _ = fit_classifier(
        &mut model,
        &mut opt,
        &data.x,
        &data.y,
        &TrainConfig { epochs: 2, batch_size: 8, obs: Some(obs.clone()), ..Default::default() },
        &mut fit_rng,
    );
}

/// Big enough that a wearable on Wi-Fi offloads to the cloud, so the
/// requests actually traverse the queue → scheduler → worker path.
fn cloud_model(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 4, Activation::Identity, &mut rng));
    net
}

/// Serves three sequential requests through one single-threaded worker;
/// each submit waits for its response, so batches, spans and counters are
/// fully deterministic. Returns after the server has joined its threads
/// (every span closed).
fn tiny_serve(obs: &Obs) {
    let config =
        ServeConfig { workers: 1, max_batch: 1, obs: Some(obs.clone()), ..Default::default() };
    let server = InferenceServer::start(cloud_model(10), None, config);
    let client = server.client();
    let profile = ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi };
    for i in 0..3 {
        let input = vec![0.1 * (i as f32 + 1.0); 32];
        let resp = client.submit(&input, profile).expect("server up").recv().expect("answered");
        assert_eq!(
            resp.latency,
            Duration::ZERO,
            "sim-clock latencies are zero unless the simulation advances"
        );
    }
    drop(client);
    server.shutdown();
}

/// One full instrumented session: train then serve, one shared sim-clock
/// observability session, exported as canonical JSON.
fn session_json() -> String {
    let obs = Obs::sim();
    tiny_train(&obs);
    tiny_serve(&obs);
    obs.snapshot().to_json().to_string()
}

#[test]
fn golden_trace_matches() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let json = session_json();

    if std::env::var("MDL_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, format!("{json}\n")).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with MDL_UPDATE_GOLDEN=1");
    assert_eq!(
        json,
        golden.trim_end(),
        "observability export drifted from tests/golden/observability.json; \
         if the change is intentional, regenerate with \
         `MDL_UPDATE_GOLDEN=1 cargo test --test observability` and commit the diff"
    );

    // spot-check the story the golden tells
    let snap = ObsSnapshot::from_json(&json).expect("snapshot parses");
    let outline = snap.span_outline();
    assert!(outline.contains(&(0, "train.fit".to_string())));
    assert!(outline.contains(&(1, "train.epoch".to_string())));
    assert!(outline.contains(&(2, "train.batch".to_string())));
    assert_eq!(outline.iter().filter(|(_, n)| n == "serve.batch").count(), 3);
    assert_eq!(snap.counter("train.batches"), Some(6), "2 epochs x 3 batches");
    assert_eq!(snap.counter("serve.completed"), Some(3));
    assert_eq!(snap.counter("serve.batches"), Some(3));
}

#[test]
fn snapshot_bit_identical_across_runs_and_kernel_threads() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let run = |threads: usize| {
        kernel::set_threads(threads);
        let obs = Obs::sim();
        tiny_train(&obs);
        let json = obs.snapshot().to_json().to_string();
        kernel::set_threads(1);
        json
    };
    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a, b, "repeated sim-clock runs must export identical bytes");
    assert_eq!(a, c, "kernel thread count must not leak into the export");
}

#[test]
fn registry_and_transport_ledger_agree_on_faulty_lte() {
    let link = LinkConfig {
        loss_prob: 0.08,
        jitter_frac: 0.1,
        ..LinkConfig::clean(NetworkProfile::lte())
    };
    let config = FabricConfig {
        faults: FaultPlan::lossy_cohort(),
        quorum_fraction: 0.4,
        ..FabricConfig::faulty(link)
    };
    let mut fabric = Fabric::new(6, config, 0xB17E);
    let obs = Obs::sim();
    fabric.attach_obs(obs.clone());

    let mut rng = StdRng::seed_from_u64(31);
    let data = mdl_core::data::synthetic::gaussian_blobs(120, 3, 0.5, &mut rng);
    let clients = partition_dataset(&data, 6, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![2, 8, 3], 5);
    let availability = AvailabilityModel::always_available(6);
    let fed = FedConfig { rounds: 4, client_fraction: 1.0, ..Default::default() };
    let run =
        run_federated_over(&spec, &clients, &data, &fed, &availability, &mut fabric, &mut rng)
            .expect("quorum reachable");

    // one source of truth: every ledger-derived number must match the
    // registry counter the fabric exported
    let snap = obs.snapshot();
    let t = &run.transport;
    assert_eq!(snap.counter("net.attempts"), Some(t.attempts));
    assert_eq!(snap.counter("net.retries"), Some(t.retries));
    assert_eq!(snap.counter("net.timeouts"), Some(t.timeouts));
    assert_eq!(snap.counter("net.drops"), Some(t.drops));
    assert_eq!(snap.counter("net.bytes_up"), Some(t.bytes_up));
    assert_eq!(snap.counter("net.bytes_down"), Some(t.bytes_down));
    assert_eq!(snap.counter("net.delivered_bytes"), Some(t.bytes_up + t.bytes_down));
    assert_eq!(snap.counter("net.wasted_bytes"), Some(t.wasted_bytes));
    assert_eq!(snap.counter("net.rounds"), Some(t.rounds));
    assert!(t.bytes_up + t.bytes_down > 0, "the probe must move real bytes");

    // the fed loop recorded its rounds as spans on the same session
    let rounds = snap.span_outline().iter().filter(|(_, n)| n == "fed.round").count();
    assert_eq!(rounds as u64, t.rounds);
}
