//! Planned-executor correctness: a compiled [`Plan`] must be
//! **bit-identical** to the dynamic eval path — for arbitrary
//! Dense/Dropout/GRU/LSTM stacks, batch shapes, fusion settings, kernel
//! thread counts, and both precisions — and the serving tier's
//! per-version plan cache must recompile across hot swaps so swapped-in
//! models are served exactly.

use mdl_core::nn::{Dropout, Lstm};
use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use proptest::prelude::*;
use std::sync::Mutex;

/// `kernel::set_threads` is process-global; tests that touch it serialize.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// One layer of a generated stack: the value is the output width the
/// layer maps its input to (Dropout keeps the width).
#[derive(Debug, Clone, Copy)]
enum LayerKind {
    Dense(usize, Activation),
    Dropout,
    Gru(usize),
    Lstm(usize),
}

/// Decodes one packed `u64` into a layer (the vendored proptest subset
/// has no `prop_oneof`, so variants are chosen by modulus).
fn decode_kind(code: u64) -> LayerKind {
    let w = 1 + (code / 16 % 9) as usize;
    let h = 1 + (code / 16 % 6) as usize;
    let act = match code / 4 % 4 {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::Tanh,
        _ => Activation::Sigmoid,
    };
    match code % 4 {
        0 => LayerKind::Dense(w, act),
        1 => LayerKind::Dropout,
        2 => LayerKind::Gru(h),
        _ => LayerKind::Lstm(h),
    }
}

fn kind_strategy() -> impl Strategy<Value = LayerKind> {
    (0u64..1_000_000).prop_map(decode_kind)
}

/// Dense/GRU/LSTM only — the quantizable subset.
fn quant_kind_strategy() -> impl Strategy<Value = LayerKind> {
    (0u64..1_000_000).prop_map(|code| {
        let w = 1 + (code / 16 % 9) as usize;
        let h = 1 + (code / 16 % 6) as usize;
        match code % 3 {
            0 => LayerKind::Dense(w, Activation::Relu),
            1 => LayerKind::Gru(h),
            _ => LayerKind::Lstm(h),
        }
    })
}

fn build(stack: &[LayerKind], in_dim: usize, seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    let mut width = in_dim;
    for (i, kind) in stack.iter().enumerate() {
        match *kind {
            LayerKind::Dense(w, act) => {
                net.push(Dense::new(width, w, act, &mut rng));
                width = w;
            }
            LayerKind::Dropout => {
                net.push(Dropout::new(width, 0.4, seed ^ i as u64));
            }
            LayerKind::Gru(h) => {
                net.push(Gru::new(width, h, &mut rng));
                width = h;
            }
            LayerKind::Lstm(h) => {
                net.push(Lstm::new(width, h, &mut rng));
                width = h;
            }
        }
    }
    net
}

fn input(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.37 + seed as f32 * 0.11).sin())
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f32: planned execution (fused and unfused) is bit-for-bit the
    /// dynamic `forward_eval` result for any supported stack and shape.
    #[test]
    fn planned_f32_matches_dynamic_bitwise(
        stack in prop::collection::vec(kind_strategy(), 1..=4),
        in_dim in 1usize..=7,
        rows in 1usize..=5,
        seed in 0u64..500,
        fuse in any::<bool>(),
    ) {
        let _guard = KERNEL_LOCK.lock().unwrap();
        kernel::set_threads(1);
        let net = build(&stack, in_dim, seed);
        let x = input(rows, in_dim, seed);
        let dynamic = net.forward_eval(&x);
        let mut plan = Plan::compile(PlanModel::F32(&net), rows, in_dim, PlanOptions { fuse })
            .expect("supported stack plans");
        let mut out = Matrix::default();
        // run twice: the second pass reuses warmed buffers and must not drift
        plan.run(PlanModel::F32(&net), &x, &mut out);
        plan.run(PlanModel::F32(&net), &x, &mut out);
        prop_assert_eq!(bits(&dynamic), bits(&out));
    }

    /// int8: the planned quantized path (single-pass fused drain included)
    /// reproduces the dynamic quantized path exactly.
    #[test]
    fn planned_int8_matches_dynamic_bitwise(
        stack in prop::collection::vec(quant_kind_strategy(), 1..=3),
        in_dim in 1usize..=7,
        rows in 1usize..=5,
        seed in 0u64..500,
        fuse in any::<bool>(),
    ) {
        let _guard = KERNEL_LOCK.lock().unwrap();
        kernel::set_threads(1);
        let mut net = build(&stack, in_dim, seed);
        let qm = QuantizedModel::from_model(&mut net).expect("quantizable stack");
        let x = input(rows, in_dim, seed);
        let dynamic = qm.forward_eval(&x);
        let mut plan = Plan::compile(PlanModel::Int8(&qm), rows, in_dim, PlanOptions { fuse })
            .expect("supported stack plans");
        let mut out = Matrix::default();
        plan.run(PlanModel::Int8(&qm), &x, &mut out);
        plan.run(PlanModel::Int8(&qm), &x, &mut out);
        prop_assert_eq!(bits(&dynamic), bits(&out));
    }
}

/// Large enough (8 × 1024 × 192 ≈ 1.6M MACs) to cross the kernel's
/// parallel threshold, so the threaded GEMM path actually runs: the plan
/// must stay bit-identical to the dynamic path at every thread count.
#[test]
fn planned_matches_dynamic_across_thread_counts() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0x9_1a_2b);
    let mut net = Sequential::new();
    net.push(Dense::new(192, 1024, Activation::Relu, &mut rng));
    net.push(Dense::new(1024, 64, Activation::Tanh, &mut rng));
    net.push(Dense::new(64, 10, Activation::Identity, &mut rng));
    let x = input(8, 192, 42);
    kernel::set_threads(1);
    let reference = bits(&net.forward_eval(&x));
    for threads in [1, 2, 4, 8] {
        kernel::set_threads(threads);
        let dynamic = net.forward_eval(&x);
        assert_eq!(bits(&dynamic), reference.clone(), "dynamic diverged at {threads} threads");
        for fuse in [false, true] {
            let mut plan =
                Plan::compile(PlanModel::F32(&net), 8, 192, PlanOptions { fuse }).expect("plans");
            let mut out = Matrix::default();
            plan.run(PlanModel::F32(&net), &x, &mut out);
            assert_eq!(
                bits(&out),
                reference.clone(),
                "plan (fuse={fuse}) diverged at {threads} threads"
            );
        }
    }
    kernel::set_threads(1);
}

/// Stacks the planner refuses (BiGru, empty) fall back cleanly, and a
/// shape mismatch is a compile error, not a wrong answer.
#[test]
fn planner_rejects_unsupported_and_misshapen_models() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new();
    net.push(mdl_core::nn::BiGru::new(4, 3, &mut rng));
    match Plan::compile(PlanModel::F32(&net), 2, 4, PlanOptions::default()) {
        Err(mdl_core::nn::PlanError::Unsupported(_)) => {}
        other => panic!("BiGru must be unsupported, got {other:?}"),
    }
    let empty = Sequential::new();
    assert!(matches!(
        Plan::compile(PlanModel::F32(&empty), 1, 1, PlanOptions::default()),
        Err(mdl_core::nn::PlanError::Empty)
    ));
    let mut dense = Sequential::new();
    dense.push(Dense::new(6, 2, Activation::Relu, &mut rng));
    assert!(matches!(
        Plan::compile(PlanModel::F32(&dense), 2, 5, PlanOptions::default()),
        Err(mdl_core::nn::PlanError::Shape { layer: 0, expected: 6, got: 5 })
    ));
}

/// Hot swap through the serving tier: worker plan caches are keyed by
/// model version, so after a swap (including a precision swap) responses
/// must match the *new* model's direct output bitwise — a stale plan
/// would produce the old model's logits.
#[test]
fn serve_plan_cache_recompiles_on_hot_swap() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    // big enough that a wearable on Wi-Fi routes to the cloud workers
    let cloud_model = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
        net.push(Dense::new(3072, 4, Activation::Identity, &mut rng));
        net
    };
    let profile = ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi };
    let input: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
    let x = Matrix::row_vector(&input);

    let server = InferenceServer::start(
        cloud_model(1),
        None,
        ServeConfig { workers: 1, kernel_threads: Some(1), ..Default::default() },
    );
    let client = server.client();
    let ask = |client: &mdl_core::serve::ServeClient| {
        client.submit(&input, profile).expect("up").recv().expect("answered")
    };

    // twice on v1: second hit runs the cached plan, still exact
    let direct_v1 = cloud_model(1).predict_proba(&x);
    for _ in 0..2 {
        let resp = ask(&client);
        assert_eq!(resp.model_version, 1);
        assert_eq!(
            resp.probs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct_v1.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    // f32 → f32 swap: new version, new plan, new bits
    assert_eq!(server.swap_model(cloud_model(2)), 2);
    let direct_v2 = cloud_model(2).predict_proba(&x);
    let resp = ask(&client);
    assert_eq!(resp.model_version, 2);
    assert_eq!(
        resp.probs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        direct_v2.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // f32 → int8 swap: the plan cache must re-key onto the quantized path
    let qm = QuantizedModel::from_model(&mut cloud_model(2)).expect("dense stack quantizes");
    let direct_q = qm.predict_proba(&x);
    assert_eq!(server.swap_model(qm), 3);
    let resp = ask(&client);
    assert_eq!(resp.model_version, 3);
    assert_eq!(
        resp.probs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        direct_q.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // and the plan.* instruments exist once the planned path has fired
    let snap = server.obs().snapshot();
    assert!(snap.counter("plan.cache_misses").unwrap_or(0) >= 1, "at least one compile recorded");
    assert!(snap.counter("plan.cache_hits").unwrap_or(0) >= 1, "repeat batch hit the cache");

    drop(client);
    server.shutdown();
}
