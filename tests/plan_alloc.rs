//! Steady-state planned execution performs **zero heap allocation**.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up run (which may grow thread-local kernel pack buffers and the
//! caller's output matrix to capacity), repeated `Plan::run` calls on
//! both precisions must allocate nothing. This file is its own test
//! binary because a global allocator is process-wide, and it holds a
//! single `#[test]` so no unrelated test-harness allocation races the
//! counting window.

use mdl_core::nn::Lstm;
use mdl_core::prelude::*;
use mdl_core::tensor::kernel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations (and reallocations) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `plan` once armed and returns how many allocations it made.
fn count_allocs(mut run: impl FnMut()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    run();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn planned_execution_is_zero_alloc_in_steady_state() {
    // Threaded GEMM workers allocate their own pack buffers per call;
    // the zero-alloc guarantee is for the single-threaded kernel path
    // (thread-local packs are grown once during warm-up and reused).
    kernel::set_threads(1);

    let mut rng = StdRng::seed_from_u64(0xA110C);
    let mut net = Sequential::new();
    net.push(Gru::new(12, 16, &mut rng));
    net.push(Lstm::new(16, 14, &mut rng));
    net.push(Dense::new(14, 24, Activation::Relu, &mut rng));
    net.push(Dense::new(24, 5, Activation::Identity, &mut rng));
    let rows = 6;
    let x = Matrix::from_fn(rows, 12, |r, c| ((r * 12 + c) as f32 * 0.23).sin());

    // f32, fused and unfused
    for fuse in [true, false] {
        let mut plan =
            Plan::compile(PlanModel::F32(&net), rows, 12, PlanOptions { fuse }).expect("plans");
        let mut out = Matrix::default();
        plan.run(PlanModel::F32(&net), &x, &mut out); // warm-up
        let n = count_allocs(|| {
            for _ in 0..4 {
                plan.run(PlanModel::F32(&net), &x, &mut out);
            }
        });
        assert_eq!(n, 0, "f32 plan (fuse={fuse}) allocated {n} times in steady state");
    }

    // int8, fused and unfused
    let qm = QuantizedModel::from_model(&mut net).expect("stack quantizes");
    for fuse in [true, false] {
        let mut plan =
            Plan::compile(PlanModel::Int8(&qm), rows, 12, PlanOptions { fuse }).expect("plans");
        let mut out = Matrix::default();
        plan.run(PlanModel::Int8(&qm), &x, &mut out); // warm-up
        let n = count_allocs(|| {
            for _ in 0..4 {
                plan.run(PlanModel::Int8(&qm), &x, &mut out);
            }
        });
        assert_eq!(n, 0, "int8 plan (fuse={fuse}) allocated {n} times in steady state");
    }

    // sanity: the counter itself works — the dynamic path does allocate
    let n = count_allocs(|| {
        let _ = qm.forward_eval(&x);
    });
    assert!(n > 0, "dynamic path should allocate; counting allocator may be broken");
}
