//! Acceptance tests of the population-scale simulation subsystem:
//!
//! 1. the legacy federated paths (`run_federated`, `run_federated_over`)
//!    are **bit-identical** after their round loop moved into the
//!    `mdl-sim` engine — pinned against parameter hashes captured on the
//!    pre-refactor tree;
//! 2. a 100k-client round over a faulty LTE mix completes with quorum;
//! 3. the engine's `sim.*` / `fed.*` observability counters match a
//!    checked-in golden.
//!
//! To update the golden after an intentional engine change:
//!
//! ```text
//! MDL_UPDATE_GOLDEN=1 cargo test --test population
//! git diff tests/golden/population.json   # review, then commit
//! ```

use mdl_core::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/population.json";

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn hash_params(params: &[f32]) -> u64 {
    let bytes: Vec<u8> = params.iter().flat_map(|v| v.to_le_bytes()).collect();
    fnv(&bytes)
}

fn fed_config() -> FedConfig {
    FedConfig {
        rounds: 20,
        client_fraction: 1.0,
        learning_rate: 0.2,
        local_epochs: 3,
        ..Default::default()
    }
}

fn faulty_fabric(clients: usize) -> Fabric {
    let link = LinkConfig {
        loss_prob: 0.08,
        jitter_frac: 0.1,
        ..LinkConfig::clean(NetworkProfile::lte())
    };
    let config = FabricConfig {
        faults: FaultPlan {
            dropout_prob: 0.2,
            straggler_prob: 0.25,
            straggler_slowdown: 2.0,
            flaky_prob: 0.1,
            flaky_loss: 0.25,
            partitions: Vec::new(),
        },
        retry: RetryPolicy {
            timeout_s: 0.12,
            max_attempts: 3,
            base_backoff_s: 0.05,
            backoff_multiplier: 2.0,
            max_backoff_s: 0.4,
        },
        round_deadline_s: 5.0,
        quorum_fraction: 0.4,
        max_failed_rounds: 5,
        link,
    };
    Fabric::new(clients, config, 0xFA17)
}

/// The three legacy federated paths, hashed bit-for-bit against values
/// captured immediately before the round loop moved into
/// `mdl_sim::run_legacy_loop`. Any drift here means the engine extraction
/// changed observable behaviour — which it must never do.
#[test]
fn legacy_paths_are_bit_identical_after_engine_extraction() {
    const CLIENTS: usize = 10;
    const SEED: u64 = 42;
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = mdl_core::data::synthetic::synthetic_digits(800, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, CLIENTS, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 17);
    let availability = AvailabilityModel::always_available(CLIENTS);

    // ideal fabric: the in-memory legacy simulation
    let mut rng1 = StdRng::seed_from_u64(SEED);
    let ideal = run_federated(&spec, &clients, &test, &fed_config(), &availability, &mut rng1);
    assert_eq!(hash_params(&ideal.final_params), 0x56746f6644044c8f, "ideal path drifted");

    // faulty LTE cohort through mdl-net, with the obs counters the loop owns
    let mut rng2 = StdRng::seed_from_u64(SEED);
    let mut fabric = faulty_fabric(CLIENTS);
    let obs = Obs::sim();
    fabric.attach_obs(obs.clone());
    let faulty = run_federated_over(
        &spec,
        &clients,
        &test,
        &fed_config(),
        &availability,
        &mut fabric,
        &mut rng2,
    )
    .expect("a 40% quorum is reachable under this fault plan");
    assert_eq!(hash_params(&faulty.final_params), 0x6bd062eb8938992a, "faulty path drifted");
    assert_eq!(faulty.ledger.total_bytes(), 2_334_816);
    assert_eq!(faulty.transport.attempts, 404);
    let snap = obs.snapshot();
    assert_eq!(snap.counter("fed.selected"), Some(200));
    assert_eq!(snap.counter("fed.updates"), Some(121));

    // partial availability + client failures: shuffle and fate draws
    let mut rng3 = StdRng::seed_from_u64(SEED ^ 7);
    let avail = AvailabilityModel::overnight(CLIENTS);
    let cfg = FedConfig { client_fraction: 0.5, failure_prob: 0.2, ..fed_config() };
    let partial = run_federated(&spec, &clients, &test, &cfg, &avail, &mut rng3);
    assert_eq!(hash_params(&partial.final_params), 0x325b705505b5e442, "partial path drifted");
}

/// Faulty-LTE engine settings shared by the 100k acceptance run and the
/// golden counter trace (at different scales).
fn faulty_sim(rounds: usize, population: u64) -> SimConfig {
    SimConfig {
        rounds,
        cohort: CohortSpec {
            fraction: 0.01,
            min_size: 32,
            max_size: (population as usize / 10).max(32),
        },
        faults: FaultPlan {
            dropout_prob: 0.1,
            straggler_prob: 0.1,
            straggler_slowdown: 2.0,
            flaky_prob: 0.05,
            flaky_loss: 0.25,
            partitions: Vec::new(),
        },
        loss_prob: 0.02,
        jitter_frac: 0.1,
        quorum_fraction: 0.5,
        seed: 0xF1EE7,
        ..SimConfig::default()
    }
}

/// The headline scale claim: one round over 100 000 clients on a faulty
/// LTE mix samples a cohort, survives the fault plan, reaches quorum and
/// still improves the model — with memory bounded by the cohort, never
/// the population.
#[test]
fn faulty_lte_100k_round_reaches_quorum() {
    const POPULATION: u64 = 100_000;
    let task = PopulationTask::blobs(0xF1EE7);
    let mut pop = Population::new(PopulationSpec::mobile_mix(POPULATION, 0xF1EE7));
    let cfg = faulty_sim(2, POPULATION);
    let (report, accuracy) =
        run_population_fedavg(&cfg, &mut pop, &task, None).expect("quorum reachable at 100k");

    assert_eq!(report.rounds.len(), 2);
    for r in &report.rounds {
        assert!(r.quorum_met, "round {} missed quorum: {r:?}", r.round);
        assert!(r.eligible > 1_000, "the mix should keep thousands eligible");
        assert!(r.cohort >= 32 && r.cohort <= r.eligible);
        assert!(r.delivered > r.cohort / 2, "most of the cohort should deliver");
    }
    assert!(accuracy > 0.5, "two aggregated rounds should already beat chance: {accuracy}");
    assert!(report.transport.bytes_up > 0 && report.transport.bytes_down > 0);
}

/// Golden-trace regression of the engine's observability exports: a small
/// seeded run must produce the same `sim.*` / `fed.*` counters, the same
/// span shape and the same virtual clock on every run, on every machine.
#[test]
fn sim_counters_match_golden() {
    let task = PopulationTask::blobs(0xF1EE7);
    let mut pop = Population::new(PopulationSpec::mobile_mix(500, 0xF1EE7));
    let obs = Obs::sim();
    let cfg = faulty_sim(3, 500);
    let (report, _) =
        run_population_fedavg(&cfg, &mut pop, &task, Some(&obs)).expect("quorum reachable");
    let snap = obs.snapshot();

    // counters must agree with the report before they are worth pinning
    assert_eq!(snap.counter("sim.events"), Some(report.events));
    assert_eq!(snap.counter("sim.bytes_up"), Some(report.transport.bytes_up));
    assert_eq!(snap.counter("sim.bytes_down"), Some(report.transport.bytes_down));
    let rounds = snap.span_outline().iter().filter(|(_, n)| n == "fed.round").count();
    assert_eq!(rounds, report.rounds.len());

    let mut json = String::from("{\n  \"counters\": {\n");
    let pinned: Vec<(String, u64)> = snap
        .counters_with_prefix("sim.")
        .into_iter()
        .chain(snap.counters_with_prefix("fed."))
        .collect();
    for (i, (name, value)) in pinned.iter().enumerate() {
        let sep = if i + 1 == pinned.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value}{sep}\n"));
    }
    json.push_str(&format!("  }},\n  \"clock_ns\": {}\n}}\n", snap.now_ns));

    if std::env::var("MDL_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with MDL_UPDATE_GOLDEN=1");
    assert_eq!(
        json, golden,
        "sim.*/fed.* counters drifted from tests/golden/population.json; \
         if the change is intentional, regenerate with \
         `MDL_UPDATE_GOLDEN=1 cargo test --test population` and commit the diff"
    );
}
