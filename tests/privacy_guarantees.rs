//! Cross-crate privacy integration: the accountant, mechanisms, DP
//! training and the ARDEN perturbation working together.

use mdl_core::prelude::*;

#[test]
fn accountant_matches_across_entry_points() {
    // the ε reported by a DP-FedAvg run must equal a fresh accountant fed
    // the same (q, z, steps)
    let mut rng = StdRng::seed_from_u64(9201);
    let data = mdl_core::data::synthetic::gaussian_blobs(300, 3, 0.5, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 10, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![2, 8, 3], 2);
    let rounds = 12;
    let q = 0.5;
    let z = 0.8;
    let run = run_dp_fedavg(
        &spec,
        &clients,
        &test,
        &DpFedConfig { rounds, sample_prob: q, noise_multiplier: z, ..Default::default() },
        &mut rng,
    );
    let expected = compute_epsilon(q, z, rounds as u64, 1e-5);
    assert!(
        (run.epsilon - expected).abs() < 1e-9,
        "run ε {} vs accountant ε {expected}",
        run.epsilon
    );
}

#[test]
fn dp_noise_actually_randomises_the_model() {
    // two DP runs from the same init but different noise draws must differ;
    // two noiseless runs with identical seeds must agree exactly
    let mut rng = StdRng::seed_from_u64(9202);
    let data = mdl_core::data::synthetic::gaussian_blobs(200, 2, 0.4, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 5, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![2, 6, 2], 4);

    let run_with = |seed: u64, z: f64| {
        let mut r = StdRng::seed_from_u64(seed);
        run_dp_fedavg(
            &spec,
            &clients,
            &test,
            &DpFedConfig { rounds: 4, noise_multiplier: z, clip_norm: 1.0, ..Default::default() },
            &mut r,
        )
        .final_params
    };
    assert_eq!(run_with(7, 0.0), run_with(7, 0.0), "deterministic given seed");
    assert_ne!(run_with(7, 1.0), run_with(8, 1.0), "noise must differ across seeds");
}

#[test]
fn arden_privacy_epsilon_tracks_the_gaussian_mechanism() {
    let mut rng = StdRng::seed_from_u64(9203);
    let mut net = Sequential::new();
    net.push(Dense::new(8, 4, Activation::Relu, &mut rng));
    net.push(Dense::new(4, 2, Activation::Identity, &mut rng));
    let arden = Arden::from_pretrained(
        net,
        ArdenConfig { split_at: 1, nullification_rate: 0.0, noise_sigma: 2.0, clip_norm: 1.0 },
    );
    // sensitivity 2·clip = 2, multiplier = σ/sens = 1.0
    let expected = GaussianMechanism::new(2.0, 1.0).epsilon_single_shot(1e-5);
    assert!((arden.privacy_epsilon(1e-5) - expected).abs() < 1e-12);
}

#[test]
fn sparse_vector_composes_with_selective_sgd_style_selection() {
    // use SVT to decide which gradient magnitudes are worth uploading —
    // the privacy-preserving variant of reference [16]'s selection rule
    use mdl_core::privacy::{SparseVector, SvtAnswer};
    let mut rng = StdRng::seed_from_u64(9204);
    let gradients: Vec<f64> = (0..100).map(|i| if i % 10 == 0 { 5.0 } else { 0.01 }).collect();
    let mut svt = SparseVector::new(1.0, 1e5, 1.0, 10, &mut rng);
    let picked = svt.select_indices(&gradients, &mut rng);
    assert_eq!(picked.len(), 10, "all ten large coordinates found: {picked:?}");
    assert!(picked.iter().all(|&i| i % 10 == 0));
    assert_eq!(svt.query(100.0, &mut rng), SvtAnswer::Exhausted);
}

#[test]
fn dp_sgd_epsilon_grows_monotonically_during_training() {
    let mut rng = StdRng::seed_from_u64(9205);
    let data = mdl_core::data::synthetic::gaussian_blobs(150, 2, 0.4, &mut rng);
    let mut eps_prev = 0.0;
    for epochs in [1usize, 3, 6] {
        let mut model = Sequential::new();
        let mut r = StdRng::seed_from_u64(1);
        model.push(Dense::new(2, 6, Activation::Relu, &mut r));
        model.push(Dense::new(6, 2, Activation::Identity, &mut r));
        let report = train_dp_sgd(
            &mut model,
            &data.x,
            &data.y,
            &DpSgdConfig { epochs, ..Default::default() },
            &mut rng,
        );
        assert!(report.epsilon > eps_prev, "ε must grow with training length");
        eps_prev = report.epsilon;
    }
}
