//! End-to-end int8 inference: a trained classifier quantized through
//! `QuantizedModel` must stay within one accuracy point of its f32
//! parent on a fixed-seed eval, a DeepMood-style recurrent stack must
//! agree with f32 on essentially every prediction, the serving tier
//! must hot-swap between the two precisions under a live client, and
//! the forced-scalar kernel path must be bit-identical to dispatch.

use mdl_core::nn::Gru;
use mdl_core::prelude::*;
use mdl_core::tensor::kernel::int8;
use std::time::Duration;

/// Trains the small digits MLP every compression test uses.
fn trained_digits_model() -> (Sequential, Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0xD161);
    let data = mdl_core::data::synthetic::synthetic_digits(1200, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let mut model = Sequential::new();
    model.push(Dense::new(64, 48, Activation::Relu, &mut rng));
    model.push(Dense::new(48, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.005);
    fit_classifier(
        &mut model,
        &mut opt,
        &train.x,
        &train.y,
        &TrainConfig { epochs: 4, batch_size: 32, ..Default::default() },
        &mut rng,
    );
    (model, test.x, test.y)
}

#[test]
fn quantized_classifier_stays_within_one_accuracy_point_of_f32() {
    let (mut model, x, y) = trained_digits_model();
    let f32_acc = model.accuracy(&x, &y);
    assert!(f32_acc > 0.7, "f32 baseline must be a real classifier, got {f32_acc}");

    let qm = QuantizedModel::from_model(&mut model).expect("all-Dense model quantizes");
    let int8_acc = qm.accuracy(&x, &y);
    assert!(
        (f32_acc - int8_acc).abs() <= 0.01,
        "int8 accuracy {int8_acc:.4} drifted more than one point from f32 {f32_acc:.4}"
    );
    // quantization must not have disturbed the f32 model it read from
    assert_eq!(model.accuracy(&x, &y), f32_acc);
}

#[test]
fn quantized_deepmood_style_recurrent_stack_matches_f32_predictions() {
    // GRU encoder + fused dense head over keystroke-like sequences, the
    // DeepMood shape (§IV-A); labels are the f32 model's own predictions,
    // so int8 "accuracy" is exactly its agreement with f32.
    let mut rng = StdRng::seed_from_u64(0xDEE9);
    let mut model = Sequential::new();
    model.push(Gru::new(8, 16, &mut rng));
    model.push(Dense::new(16, 16, Activation::Relu, &mut rng));
    model.push(Dense::new(16, 3, Activation::Identity, &mut rng));
    let qm = QuantizedModel::from_model(&mut model).expect("Gru+Dense stack quantizes");

    let sequences: Vec<Matrix> = (0..150)
        .map(|s| Matrix::from_fn(20, 8, |t, f| ((s * 160 + t * 8 + f) as f32 * 0.173).sin() * 0.8))
        .collect();
    let (mut agree, total) = (0usize, sequences.len());
    for seq in &sequences {
        let f32_states = model.forward_eval(seq);
        let int8_states = qm.forward_eval(seq);
        assert_eq!(f32_states.shape(), int8_states.shape());
        let last = f32_states.rows() - 1;
        let argmax = |m: &Matrix| {
            let row = m.row(last);
            (0..row.len()).max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap()).unwrap()
        };
        if argmax(&f32_states) == argmax(&int8_states) {
            agree += 1;
        } else {
            // the untrained head has no training margin; a flip is only a
            // quantization failure when f32 was decisive about its answer
            let row = f32_states.row(last);
            let mut sorted: Vec<f32> = row.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let margin = sorted[0] - sorted[1];
            assert!(
                margin < 0.05,
                "int8 flipped a decisive f32 prediction (top-2 margin {margin:.4})"
            );
        }
    }
    let agreement = agree as f64 / total as f64;
    assert!(
        agreement >= 0.98,
        "int8 recurrent stack agrees with f32 on only {agreement:.3} of sequences"
    );
}

#[test]
fn server_hot_swaps_between_f32_and_int8_under_a_live_client() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        net.push(Dense::new(16, 64, Activation::Relu, &mut rng));
        net.push(Dense::new(64, 4, Activation::Identity, &mut rng));
        net
    };
    let net = build();
    let qm = QuantizedModel::from_model(&mut build()).expect("all-Dense model quantizes");

    let server = InferenceServer::start(
        net,
        None,
        ServeConfig { max_wait: Duration::from_millis(1), ..Default::default() },
    );
    let client = server.client();
    let profile = ClientProfile { device: DeviceClass::Flagship, network: NetworkClass::Wifi };
    let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();

    assert_eq!(server.precision(), "f32");
    let before = client.submit(&input, profile).unwrap().recv().unwrap();

    let v2 = server.swap_quantized(qm);
    assert_eq!(server.precision(), "int8");
    let after = client.submit(&input, profile).unwrap().recv().unwrap();
    assert_eq!(after.model_version, v2);
    assert_eq!(before.probs.len(), after.probs.len());
    let drift =
        before.probs.iter().zip(&after.probs).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(drift < 0.05, "int8 softmax drifted {drift} from f32 on the same input");

    drop(client);
    server.shutdown();
}

#[test]
fn forced_scalar_kernel_is_bit_identical_to_simd_dispatch() {
    let (mut model, x, _) = trained_digits_model();
    let qm = QuantizedModel::from_model(&mut model).expect("all-Dense model quantizes");

    let dispatched = qm.predict_proba(&x);
    int8::set_force_scalar(true);
    assert!(int8::force_scalar());
    let scalar = qm.predict_proba(&x);
    int8::set_force_scalar(false);

    assert_eq!(
        dispatched.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        scalar.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "int8 inference must be bit-identical with SIMD forced off ({})",
        int8::simd_level()
    );
}
