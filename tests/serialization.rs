//! Over-the-air model deployment: train federally, serialise with the
//! saved-model format, ship, reload, and serve — the §III "update the model
//! without shipping a new app" workflow.

use mdl_core::nn::{load_model, save_model};
use mdl_core::prelude::*;

#[test]
fn federated_model_ships_and_reloads_bit_exact() {
    let mut rng = StdRng::seed_from_u64(9401);
    let data = mdl_core::data::synthetic::synthetic_digits(600, 0.08, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let clients = partition_dataset(&train, 8, Partition::Iid, &mut rng);
    let spec = MlpSpec::new(vec![64, 32, 10], 9);
    let availability = AvailabilityModel::always_available(8);
    let run = mdl_core::federated::run_federated(
        &spec,
        &clients,
        &test,
        &FedConfig { rounds: 10, learning_rate: 0.2, local_epochs: 3, ..Default::default() },
        &availability,
        &mut rng,
    );

    // server serialises the trained model for distribution
    let mut server_model = spec.build_with(&run.final_params);
    let artifact = save_model(&mut server_model).expect("MLPs are saveable");

    // the device reloads it and must agree prediction-for-prediction
    let device_model = load_model(&artifact).expect("artifact is valid");
    assert_eq!(
        device_model.predict(&test.x),
        server_model.predict(&test.x),
        "shipped model must be bit-exact"
    );
    assert!(device_model.accuracy(&test.x, &test.y) > 0.7);

    // the artifact is exactly header + fp32 params — predictable OTA size
    assert!(artifact.len() < 4 * server_model.num_params() + 64);
}

#[test]
fn compressed_artifact_is_much_smaller_than_saved_model() {
    let mut rng = StdRng::seed_from_u64(9402);
    let data = mdl_core::data::synthetic::synthetic_digits(500, 0.08, &mut rng);
    let mut net = Sequential::new();
    net.push(Dense::new(64, 64, Activation::Relu, &mut rng));
    net.push(Dense::new(64, 10, Activation::Identity, &mut rng));
    let mut opt = Adam::new(0.01);
    let _ = fit_classifier(
        &mut net,
        &mut opt,
        &data.x,
        &data.y,
        &TrainConfig { epochs: 10, ..Default::default() },
        &mut rng,
    );

    let fp32_artifact = save_model(&mut net).expect("saveable").len() as u64;
    let compressed = deep_compress(
        &mut net,
        Some((&data.x, &data.y)),
        &DeepCompressionConfig {
            sparsity: 0.8,
            quant_bits: 4,
            finetune: Some((3, 0.01)),
            prune_steps: 2,
        },
        &mut rng,
    );
    assert!(
        compressed.report.final_bytes * 5 < fp32_artifact,
        "compressed OTA payload {} must be ≥5× below the fp32 artifact {}",
        compressed.report.final_bytes,
        fp32_artifact
    );
}

#[test]
fn gru_models_survive_the_wire_too() {
    let mut rng = StdRng::seed_from_u64(9403);
    let mut net = Sequential::new();
    net.push(Gru::new(4, 8, &mut rng));
    net.push(Dense::new(8, 3, Activation::Identity, &mut rng));
    let x = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f32 * 0.3).sin());
    let before = net.forward(&x, Mode::Eval);
    let bytes = save_model(&mut net).expect("GRU stacks are saveable");
    let mut back = load_model(&bytes).expect("round trip");
    assert!(back.forward(&x, Mode::Eval).approx_eq(&before, 0.0));
}
