//! End-to-end serving integration: a server booted from a saved artifact
//! answers a concurrent load through the micro-batching worker pool,
//! survives a hot model swap mid-load without dropping a request, and
//! sheds to the early-exit head under overload.

use mdl_core::nn::{save_model, Activation, Dense, Sequential};
use mdl_core::prelude::*;
use mdl_core::serve::{InferenceServer, LoadReport, SubmitError};
use std::time::Duration;

/// ~9.6M MACs: a wearable on Wi-Fi offloads this to the cloud path, so
/// every request exercises the queue → scheduler → worker pipeline.
fn artifact(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 3072, Activation::Relu, &mut rng));
    net.push(Dense::new(3072, 4, Activation::Identity, &mut rng));
    save_model(&mut net).expect("dense stack serializes")
}

fn exit_head(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Dense::new(32, 4, Activation::Identity, &mut rng));
    net
}

fn wearable_wifi() -> ClientProfile {
    ClientProfile { device: DeviceClass::Wearable, network: NetworkClass::Wifi }
}

fn inputs() -> Matrix {
    Matrix::from_fn(96, 32, |r, c| ((r * 32 + c) as f32 * 0.21).sin())
}

#[test]
fn concurrent_load_with_hot_swap_drops_nothing() {
    let server = InferenceServer::from_artifact(
        &artifact(1),
        Some(exit_head(9)),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            shed_queue_depth: 64,
            kernel_threads: None,
            obs: None,
        },
    )
    .expect("artifact decodes");
    let client = server.client();

    // swap to a same-architecture retrained model while the load runs
    let bytes2 = artifact(2);
    let report: LoadReport = std::thread::scope(|s| {
        let swapper = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(40));
            server.swap_artifact(&bytes2).expect("valid artifact")
        });
        let report = run_load(
            &client,
            &inputs(),
            &LoadGenConfig {
                seed: 77,
                requests: 1024,
                mode: LoadMode::Closed { concurrency: 16 },
                profiles: vec![wearable_wifi()],
                classes: vec![],
            },
        );
        assert_eq!(swapper.join().expect("swap thread"), 2, "swap fired mid-load");
        report
    });

    assert_eq!(report.completed, 1024, "no request dropped");
    assert_eq!(report.cloud, 1024, "wearable+wifi is cloud-bound");
    assert!(report.mean_batch_size > 1.0, "batching never kicked in: {}", report.mean_batch_size);
    assert!(
        report.percentile(99.0) < Duration::from_millis(500),
        "p99 {:?} breaches the bound",
        report.percentile(99.0)
    );
    assert!(report.shed_rate() < 0.05, "closed loop under the shed threshold must not shed");

    let snap = server.metrics();
    assert_eq!(snap.completed, 1024);
    assert!(snap.mean_batch_size > 1.0);
    assert!(snap.batches >= 128, "1024 requests at max_batch 8 need >= 128 batches");

    drop(client);
    server.shutdown();
}

#[test]
fn hot_swap_mid_load_serves_both_versions() {
    let server = InferenceServer::from_artifact(
        &artifact(3),
        None,
        ServeConfig { workers: 4, ..Default::default() },
    )
    .expect("artifact decodes");
    let client = server.client();

    let loader = {
        let client = client.clone();
        let inputs = inputs();
        std::thread::spawn(move || {
            run_load(
                &client,
                &inputs,
                &LoadGenConfig {
                    seed: 31,
                    requests: 512,
                    mode: LoadMode::Closed { concurrency: 8 },
                    profiles: vec![wearable_wifi()],
                    classes: vec![],
                },
            )
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(server.swap_artifact(&artifact(4)).expect("valid artifact"), 2);
    let report = loader.join().expect("load thread");

    assert_eq!(report.completed, 512, "in-flight requests survive the swap");
    assert_eq!(server.swap_count(), 1);
    assert_eq!(server.version(), 2);
    drop(client);
    server.shutdown();
}

#[test]
fn overload_sheds_to_early_exit_within_bounds() {
    let server = InferenceServer::from_artifact(
        &artifact(5),
        Some(exit_head(10)),
        ServeConfig { workers: 4, shed_queue_depth: 8, ..Default::default() },
    )
    .expect("artifact decodes");
    let client = server.client();

    // offered far beyond the pool's capacity: the queue fills and the
    // shed path must absorb the excess, still answering every request
    let report = run_load(
        &client,
        &inputs(),
        &LoadGenConfig {
            seed: 5,
            requests: 600,
            mode: LoadMode::Open { rps: 20_000.0 },
            profiles: vec![wearable_wifi()],
            classes: vec![],
        },
    );
    assert_eq!(report.completed, 600, "shed answers are still answers");
    assert!(report.shed_rate() > 0.1, "overload must shed: rate {}", report.shed_rate());
    assert!(report.shed_rate() < 1.0, "some requests must reach the workers");
    assert_eq!(server.metrics().shed as usize, report.shed);
    drop(client);
    server.shutdown();
}

#[test]
fn shed_latencies_stay_out_of_the_served_histogram() {
    // Regression: shed responses return in microseconds, and mixing them
    // into `serve.latency_us` dragged the reported p50 at 3200 rps down
    // to ~5 µs — a nonsense "latency improvement" from dropping work.
    // Served and shed latencies now live in separate histograms.
    let obs = Obs::wall();
    let server = InferenceServer::from_artifact(
        &artifact(8),
        Some(exit_head(11)),
        ServeConfig {
            workers: 2,
            shed_queue_depth: 4,
            obs: Some(obs.clone()),
            ..Default::default()
        },
    )
    .expect("artifact decodes");
    let client = server.client();

    let report = run_load(
        &client,
        &inputs(),
        &LoadGenConfig {
            seed: 8,
            requests: 400,
            mode: LoadMode::Open { rps: 30_000.0 },
            profiles: vec![wearable_wifi()],
            classes: vec![],
        },
    );
    assert!(report.shed > 50, "this run must be shed-heavy, shed {}", report.shed);
    assert!(report.shed < report.completed, "some requests must be served");

    // served-only p50 clears the inline-forward floor: one pass through
    // the 9.6M-MAC model cannot finish in shed-fallback time
    let floor = Duration::from_micros(500);
    assert!(
        report.percentile(50.0) >= floor,
        "served p50 {:?} fell below one inline forward — shed latencies leaked in",
        report.percentile(50.0)
    );
    assert!(report.shed_percentile(50.0) < floor, "shed answers come from the tiny exit head");

    let snap = obs.snapshot();
    let served = snap.histogram("serve.latency_us").expect("served histogram");
    assert_eq!(served.count, (report.completed - report.shed) as u64);
    assert!(served.min >= 500, "served histogram floor breached: min {} us", served.min);
    let shed = snap.histogram("serve.shed_latency_us").expect("shed histogram");
    assert_eq!(shed.count, report.shed as u64);

    drop(client);
    server.shutdown();
}

#[test]
fn swap_to_new_input_width_rejects_stale_clients_cleanly() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut wide = Sequential::new();
    wide.push(Dense::new(48, 3072, Activation::Relu, &mut rng));
    wide.push(Dense::new(3072, 4, Activation::Identity, &mut rng));

    let server = InferenceServer::from_artifact(
        &artifact(7),
        None,
        ServeConfig { workers: 2, ..Default::default() },
    )
    .expect("artifact decodes");
    let client = server.client();
    assert!(client.submit(&[0.1; 32], wearable_wifi()).is_ok());

    server.swap_model(wide);
    let err = client.submit(&[0.1; 32], wearable_wifi()).unwrap_err();
    assert_eq!(err, SubmitError::WidthMismatch { expected: 48, found: 32 });
    drop(client);
    server.shutdown();
}
