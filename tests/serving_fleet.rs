//! Property tests that keep the serving-fleet scheduler honest.
//!
//! The deterministic virtual-time fleet engine (`mdl_serve::fleet`) makes
//! scheduler behaviour a pure function of the offered stream and config,
//! so its invariants can be stated as properties instead of sampled from
//! thread timing:
//!
//! * **Class-ordered shedding** — within an admission window, a request
//!   is only shed if every request of a lower class in that window was
//!   shed too; `Interactive` never sheds while an admitted `BestEffort`
//!   from the same window gets served.
//! * **Conservation** — served + shed == offered, per class and in
//!   total, across work stealing and requeueing; nothing is lost or
//!   answered twice.
//! * **Result determinism** — per-class counters and every response's
//!   argmax are bit-identical across replica counts, worker counts,
//!   kernel thread counts and batching policies (fixed coalescer vs
//!   continuous refill). Only latencies may move.
//! * **Loadgen purity** — the open-loop arrival schedule depends only on
//!   `(seed, rps, count)`, never on consumer speed, and per-class
//!   request tagging round-trips through the `RequestRecord` wire form.

use mdl_core::prelude::*;
use mdl_serve::{request_stream, RequestRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(21);
    let mut net = Sequential::new();
    net.push(Dense::new(8, 32, Activation::Relu, &mut rng));
    net.push(Dense::new(32, 4, Activation::Identity, &mut rng));
    net
}

fn inputs() -> Matrix {
    Matrix::from_fn(24, 8, |r, c| ((r * 8 + c) as f32 * 0.29).sin())
}

fn class_mix(selector: u8) -> Vec<SloClass> {
    match selector % 3 {
        0 => vec![SloClass::Interactive, SloClass::Standard, SloClass::BestEffort],
        1 => vec![
            SloClass::Interactive,
            SloClass::BestEffort,
            SloClass::BestEffort,
            SloClass::Standard,
        ],
        _ => vec![SloClass::Standard, SloClass::BestEffort],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shedding is strictly class-ordered within every admission window,
    /// and no request is ever lost or double-counted.
    #[test]
    fn shedding_is_class_ordered_and_conserving(
        seed in 0u64..1000,
        rps in 4_000f64..24_000.0,
        budget in 4usize..24,
        mix_sel in 0u8..3,
    ) {
        let (model, inputs) = (model(), inputs());
        let stream = request_stream(seed, rps, 200, &class_mix(mix_sel), inputs.rows());
        let config = FleetConfig { admit_budget: budget, ..FleetConfig::default() };
        let window = config.admit_window_ns;
        let report = FleetEngine::new(&model, &inputs, config).run(&stream);

        // conservation: every offered request resolves exactly once
        prop_assert_eq!(report.outcomes.len(), stream.len());
        for class in SloClass::ALL {
            let s = report.class(class);
            prop_assert_eq!(s.offered, s.served + s.shed, "class {} leaks requests", class);
            prop_assert_eq!(s.served, s.latency_ns.len());
            prop_assert_eq!(s.shed, s.shed_latency_ns.len());
        }
        let offered: usize = report.classes.iter().map(|c| c.offered).sum();
        prop_assert_eq!(offered, stream.len());

        // class order: a shed request implies every lower-class request
        // in the same admission window was shed too
        let mut windows: BTreeMap<u64, Vec<&mdl_serve::RequestOutcome>> = BTreeMap::new();
        for o in &report.outcomes {
            windows.entry(stream[o.index as usize].arrival_ns / window).or_default().push(o);
        }
        for (w, outcomes) in windows {
            let best_shed = outcomes.iter().filter(|o| !o.served).map(|o| o.class).min();
            if let Some(best_shed) = best_shed {
                for o in &outcomes {
                    if o.class > best_shed {
                        prop_assert!(
                            !o.served,
                            "window {}: {} shed while lower-class {} (request {}) was served",
                            w, best_shed, o.class, o.index
                        );
                    }
                }
            }
        }
    }

    /// Per-class counters and every argmax are bit-identical across
    /// fleet shapes, kernel thread counts and batching policies.
    #[test]
    fn results_are_invariant_across_fleet_and_thread_shapes(
        seed in 0u64..1000,
        rps in 2_000f64..16_000.0,
        budget in 6usize..20,
    ) {
        let (model, inputs) = (model(), inputs());
        let stream = request_stream(seed, rps, 160, &class_mix(0), inputs.rows());
        let base = FleetConfig { admit_budget: budget, ..FleetConfig::default() };
        let run = |cfg: FleetConfig| FleetEngine::new(&model, &inputs, cfg).run(&stream);

        let reference = run(base.clone());
        let ref_digest = reference.result_digest();

        let saved_threads = mdl_tensor::kernel::threads();
        for threads in [1usize, 4] {
            mdl_tensor::kernel::set_threads(threads);
            for replicas in [1usize, 2, 4] {
                let cfg = FleetConfig { replicas, ..base.clone() };
                let report = run(cfg);
                prop_assert_eq!(
                    report.result_digest(), ref_digest,
                    "replicas={} threads={}", replicas, threads
                );
                // spot-check beyond the digest: identical per-class counters
                for class in SloClass::ALL {
                    prop_assert_eq!(report.class(class).served, reference.class(class).served);
                    prop_assert_eq!(report.class(class).shed, reference.class(class).shed);
                }
            }
        }
        mdl_tensor::kernel::set_threads(saved_threads);

        // continuous refill answers exactly what the fixed coalescer does
        let fixed = run(FleetConfig { policy: BatchPolicy::Fixed, ..base.clone() });
        prop_assert_eq!(fixed.result_digest(), ref_digest, "continuous vs fixed");
        for (a, b) in fixed.outcomes.iter().zip(&reference.outcomes) {
            prop_assert_eq!(a.argmax, b.argmax, "request {} argmax diverged", a.index);
            prop_assert_eq!(a.served, b.served);
        }
    }

    /// The arrival schedule is a pure function of (seed, rps, count):
    /// same inputs, same offsets — and a longer run only appends.
    #[test]
    fn arrival_schedule_is_pure(
        seed in 0u64..5000,
        rps in 100f64..50_000.0,
        n in 1usize..300,
    ) {
        let a = mdl_serve::arrival_schedule(seed, rps, n);
        let b = mdl_serve::arrival_schedule(seed, rps, n);
        prop_assert_eq!(&a, &b, "schedule must not depend on anything but its arguments");
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
        let longer = mdl_serve::arrival_schedule(seed, rps, n + 50);
        prop_assert_eq!(&longer[..n], &a[..], "consuming more never rewrites the prefix");
    }

    /// Class tagging survives the RequestRecord wire format.
    #[test]
    fn request_records_round_trip(
        seed in 0u64..5000,
        rps in 500f64..20_000.0,
        n in 1usize..120,
        mix_sel in 0u8..3,
        rows in 1usize..40,
    ) {
        let mix = class_mix(mix_sel);
        let stream = request_stream(seed, rps, n, &mix, rows);
        prop_assert_eq!(stream.len(), n);
        for (i, rec) in stream.iter().enumerate() {
            prop_assert_eq!(rec.index as usize, i);
            prop_assert_eq!(rec.class, mix[i % mix.len()], "classes cycle by index");
            prop_assert_eq!(rec.row as usize, i % rows);
            let back = RequestRecord::from_bytes(&rec.to_bytes());
            prop_assert_eq!(back, Some(*rec), "wire round-trip must be lossless");
        }
    }
}
