//! Offline vendored subset of the `bytes` crate: [`Bytes`], [`BytesMut`],
//! and the big-endian [`Buf`]/[`BufMut`] accessors the federated wire
//! formats use. Network byte order matches upstream (`put_u32` is BE).

use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side accessors (big-endian, as upstream).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("length checked"))
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("length checked"))
    }

    /// Consumes a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_bytes(4).try_into().expect("length checked"))
    }

    /// Consumes a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_bytes(8).try_into().expect("length checked"))
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }
}

/// Write-side accessors (big-endian, as upstream).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_frame() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(7);
        b.put_f32(1.5);
        b.put_u8(9);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen.get_u32(), 7);
        assert_eq!(frozen.get_f32(), 1.5);
        assert_eq!(frozen.get_u8(), 9);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4]);
    }
}
