//! Offline vendored micro-benchmark harness exposing the `criterion`
//! calling convention (`criterion_group!` / `criterion_main!`, benchmark
//! groups, `Bencher::iter`, `BenchmarkId`). Timing is a simple
//! median-of-batches measurement printed as ns/iter — enough to track
//! perf trajectories offline without the statistical machinery.
//!
//! When run under `cargo test` (harness-less bench targets are still
//! executed), the `--test` flag switches to a one-iteration smoke run so
//! the suite stays fast.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a re-export too).
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, harness-less targets receive `--test`;
        // `cargo bench` passes `--bench`.
        let smoke = std::env::args().any(|a| a == "--test");
        Self { smoke }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), smoke: self.smoke, _parent: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke;
        run_one("", id, smoke, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke: bool,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the offline harness sizes runs by
    /// wall-clock instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.0, self.smoke, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.smoke, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Throughput hint (accepted, not reported, offline).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough iterations to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, id: &str, smoke: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if smoke {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("bench {label}: smoke ok");
        return;
    }
    // calibrate: grow iteration count until one batch costs ≥ ~20 ms
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    };
    // 3 measured batches, median reported
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.push(per_iter);
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = samples[samples.len() / 2];
    println!("bench {label}: {median:.1} ns/iter ({iters} iters/batch)");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
