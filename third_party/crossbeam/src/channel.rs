//! A multi-producer multi-consumer FIFO channel (bounded or unbounded)
//! with the `crossbeam-channel` calling convention: cloneable senders and
//! receivers, blocking and timeout receives, and disconnect detection
//! when one side is fully dropped.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half; cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloning adds another consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error returned when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned when the channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Empty and all senders are gone.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No item arrived within the deadline.
    Timeout,
    /// Empty and all senders are gone.
    Disconnected,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel holding at most `cap` items.
/// A zero capacity is bumped to one (upstream's rendezvous semantics are
/// not needed by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock").senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock").receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until the item is enqueued (or every receiver is dropped).
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            match self.shared.cap {
                Some(cap) if state.items.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel lock");
                }
                _ => break,
            }
        }
        state.items.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking; fails on a full bounded queue.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(item));
        }
        if let Some(cap) = self.shared.cap {
            if state.items.len() >= cap {
                return Err(TrySendError::Full(item));
            }
        }
        state.items.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives (or every sender is dropped).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if let Some(item) = state.items.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(item);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for an item.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) =
                self.shared.not_empty.wait_timeout(state, deadline - now).expect("channel lock");
            state = guard;
            if res.timed_out() && state.items.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("send");
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_fills() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).expect("slot 1");
        tx.try_send(2).expect("slot 2");
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).expect("slot freed");
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn timeout_elapses_when_empty() {
        let (_tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).expect("send");
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        let mut all: Vec<u64> =
            consumers.into_iter().flat_map(|c| c.join().expect("consumer")).collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, expected);
    }
}
