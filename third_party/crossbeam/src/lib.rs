//! Offline vendored subset of `crossbeam`: [`thread::scope`] (delegating
//! to `std::thread::scope`) and a multi-producer multi-consumer
//! [`channel`] with bounded/unbounded flavours, timeouts and disconnect
//! semantics — the surface the federated trainer and the serving runtime
//! use.

pub mod channel;
pub mod thread;
