//! Scoped threads with the `crossbeam::thread` calling convention
//! (`scope(|s| …)` returning `Result`, spawn closures taking `&Scope`),
//! implemented on `std::thread::scope`.

/// A handle for spawning threads that must join before the scope exits.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope so
    /// it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })) }
    }
}

/// Runs `f` with a scope handle; every spawned thread joins before this
/// returns. Unlike upstream, child panics propagate as panics rather than
/// surfacing in the returned `Result` (the workspace treats both as fatal).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_works() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2).join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
