//! `any::<T>()`: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use std::marker::PhantomData;

/// Strategy producing uniformly distributed values over all of `T`.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Builds the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any { _marker: PhantomData }
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        Standard.sample(rng)
    }
}
