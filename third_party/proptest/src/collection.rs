//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification: an exact size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The [`vec`] strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi_exclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
