//! Offline vendored mini `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace uses —
//! `proptest! { #![proptest_config(…)] fn case(x in strategy, …) { … } }`,
//! numeric-range and `any::<T>()` strategies, `prop::collection::vec`,
//! `.prop_map`, and the `prop_assert*` macros — on a deterministic seeded
//! RNG. Each case runs with a seed derived from the test name and case
//! index, so failures reproduce exactly; the failing seed and case index
//! are printed on panic.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs `cases` deterministic iterations of a property body.
#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut rand::rngs::StdRng, u64)) {
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..cases as u64 {
        let seed = h.wrapping_add(case);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let guard = CaseGuard { seed, case };
        body(&mut rng, case);
        std::mem::forget(guard);
    }
}

/// Prints the failing case's seed when the property body panics.
struct CaseGuard {
    seed: u64,
    case: u64,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest: case {} failed (rng seed {:#018x})", self.case, self.seed);
        }
    }
}

/// The main harness macro: expands each contained function into a
/// `#[test]` that evaluates its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config.cases,
                |__proptest_rng, __proptest_case| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                },
            );
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_follow_size(v in prop::collection::vec(0u8..=255, 4..9)) {
            prop_assert!(v.len() >= 4 && v.len() < 9, "len={}", v.len());
        }

        #[test]
        fn prop_map_applies(mut x in (1u32..5).prop_map(|v| v * 10)) {
            x += 1;
            prop_assert!(x == 11 || x == 21 || x == 31 || x == 41);
        }

        #[test]
        fn any_u8_covers_bytes(b in any::<u8>()) {
            let _ = b;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("det", 5, |rng, _| {
            first.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
        });
        let mut second = Vec::new();
        crate::run_cases("det", 5, |rng, _| {
            second.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
        });
        assert_eq!(first, second);
    }
}
