//! Value-generation strategies over a seeded RNG.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
