//! Harness configuration.

/// Per-block configuration, set via `#![proptest_config(…)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}
