//! ChaCha block function and a buffered word-stream generator, matching
//! the `rand_chacha` layout: a 256-bit key, 64-bit block counter and
//! 64-bit stream id, emitting four blocks (64 words) per refill.

/// A buffered ChaCha word stream with `R` double-rounds per block.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DR: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 64],
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DR: usize> ChaChaRng<DR> {
    /// Builds the stream from a 32-byte seed, counter 0, stream 0.
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("length checked"));
        }
        Self { key, counter: 0, stream: 0, buf: [0; 64], index: 64 }
    }

    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let mut working = state;
        for _ in 0..DR {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state.iter()) {
            *w = w.wrapping_add(*s);
        }
        working
    }

    fn refill(&mut self) {
        for b in 0..4 {
            let block = self.block(self.counter.wrapping_add(b as u64));
            self.buf[16 * b..16 * (b + 1)].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }

    /// Next 32-bit word of the stream.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.index >= 64 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    /// Next 64 bits, with `rand_core::BlockRng`'s buffer-boundary rules so
    /// seeded `u64` streams match upstream.
    #[inline]
    pub fn next_two_words(&mut self) -> u64 {
        if self.index < 63 {
            let lo = self.buf[self.index] as u64;
            let hi = self.buf[self.index + 1] as u64;
            self.index += 2;
            (hi << 32) | lo
        } else if self.index >= 64 {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[63]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc7539_first_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our layout splits counter/nonce as
        // 64/64, so replicate via stream bits.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng: ChaChaRng<10> = ChaChaRng::from_seed_bytes(seed);
        // nonce bytes 00 00 00 09 / 00 00 00 4a read as little-endian words
        rng.stream = 0x4a00_0000;
        let counter = 1u64 | (0x0900_0000_u64 << 32);
        let block = rng.block(counter);
        assert_eq!(block[0], 0xe4e7_f110);
        assert_eq!(block[1], 0x1559_3bd1);
        assert_eq!(block[15], 0x4e3c_50a2);
    }

    #[test]
    fn word_and_two_word_streams_agree() {
        let seed = [7u8; 32];
        let mut a: ChaChaRng<6> = ChaChaRng::from_seed_bytes(seed);
        let mut b: ChaChaRng<6> = ChaChaRng::from_seed_bytes(seed);
        for _ in 0..40 {
            let lo = a.next_word() as u64;
            let hi = a.next_word() as u64;
            assert_eq!(b.next_two_words(), (hi << 32) | lo);
        }
    }
}
