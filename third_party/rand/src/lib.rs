//! Offline vendored subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the `rand` API it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] (ChaCha12, bit-compatible seeding with upstream
//! `rand_core`'s PCG-based `seed_from_u64`), the [`seq::SliceRandom`]
//! shuffle, and the `Standard`/uniform-range sampling rules for the
//! numeric types the workspace draws.

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

pub use distributions::{Distribution, Standard};

/// The raw generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32-based expansion
    /// upstream `rand_core` 0.6 uses, so seeded streams match.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_values_cover_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
