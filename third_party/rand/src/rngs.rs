//! Standard generators.

use crate::chacha::ChaChaRng;
use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: ChaCha with 12 rounds, the
/// same algorithm upstream `rand` 0.8 uses for `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    core: ChaChaRng<6>,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.core.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core.next_two_words()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { core: ChaChaRng::from_seed_bytes(seed) }
    }
}

/// A small fast generator (xoshiro256++ here; upstream uses the same
/// family). Seeding follows the shared [`SeedableRng::seed_from_u64`].
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("length checked"));
        }
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Self { s }
    }
}
