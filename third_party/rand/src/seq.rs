//! Slice helpers: Fisher–Yates shuffle and random element choice.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching upstream's
    /// draw order: high index down, `u32`-width draws for small bounds).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
