//! Uniform sampling from `Range` / `RangeInclusive`, following the
//! widening-multiply rejection scheme of upstream `rand` 0.8's
//! `UniformInt::sample_single` (and the `[1, 2)` exponent trick for
//! floats) so seeded `gen_range` draws match.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Ranges that [`crate::Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $large:ty, $next:ident) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $large;
                sample_below::<R, $large>(rng, range, |r| r.$next() as $large)
                    .map(|hi| self.start.wrapping_add(hi as $ty))
                    .unwrap_or_else(|| rng.$next() as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let range = (end.wrapping_sub(start) as $unsigned as $large).wrapping_add(1);
                if range == 0 {
                    // full type range
                    return rng.$next() as $ty;
                }
                sample_below::<R, $large>(rng, range, |r| r.$next() as $large)
                    .map(|hi| start.wrapping_add(hi as $ty))
                    .unwrap_or_else(|| rng.$next() as $ty)
            }
        }
    };
}

/// Lemire-style widening multiply with a rejection zone; `None` means the
/// range spans the whole type (caller draws directly).
fn sample_below<R: RngCore + ?Sized, U>(
    rng: &mut R,
    range: U,
    next: impl Fn(&mut R) -> U,
) -> Option<U>
where
    U: WideMul + Copy + PartialOrd + Default,
{
    if range == U::default() {
        return None;
    }
    let zone = range.zone();
    loop {
        let v = next(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// Widening multiply + rejection-zone computation per word size.
pub trait WideMul: Sized {
    /// `(high, low)` words of `self * rhs`.
    fn wmul(self, rhs: Self) -> (Self, Self);
    /// Largest low-word value accepted without bias.
    fn zone(self) -> Self;
}

impl WideMul for u32 {
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let wide = self as u64 * rhs as u64;
        ((wide >> 32) as u32, wide as u32)
    }
    fn zone(self) -> Self {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

impl WideMul for u64 {
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let wide = self as u128 * rhs as u128;
        ((wide >> 64) as u64, wide as u64)
    }
    fn zone(self) -> Self {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

uniform_int!(u8, u8, u32, next_u32);
uniform_int!(u16, u16, u32, next_u32);
uniform_int!(u32, u32, u32, next_u32);
uniform_int!(i8, u8, u32, next_u32);
uniform_int!(i16, u16, u32, next_u32);
uniform_int!(i32, u32, u32, next_u32);
uniform_int!(u64, u64, u64, next_u64);
uniform_int!(i64, u64, u64, next_u64);
uniform_int!(usize, usize, u64, next_u64);
uniform_int!(isize, usize, u64, next_u64);

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    f32::from_bits((rng.next_u32() >> 9) | 0x3f80_0000) - 1.0
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::from_bits((rng.next_u64() >> 12) | 0x3ff0_0000_0000_0000) - 1.0
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        unit_f32(rng) * (self.end - self.start) + self.start
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        unit_f32(rng) * (end - start) + start
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        unit_f64(rng) * (self.end - self.start) + self.start
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        unit_f64(rng) * (end - start) + start
    }
}
