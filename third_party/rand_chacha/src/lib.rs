//! Offline vendored ChaCha generators (`ChaCha8Rng` / `ChaCha12Rng` /
//! `ChaCha20Rng`) exposing the same `RngCore`/`SeedableRng` interface as
//! the vendored `rand` crate. `ChaCha12Rng` is the algorithm behind
//! `rand::rngs::StdRng`.

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $doubles:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: rand::rngs::StdRng,
            // StdRng is always 12-round ChaCha; other round counts reuse the
            // same stream implementation (round-count fidelity is not needed
            // by this workspace, determinism is).
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.inner.next_u32()
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self { inner: rand::rngs::StdRng::from_seed(seed) }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds (same stream as `StdRng`).");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha12_matches_stdrng_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
