//! Offline vendored `serde` facade.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never drives an actual serializer in this environment, so the
//! traits are markers and the derives (re-exported from the vendored
//! `serde_derive`) expand to nothing.

/// Marker for types annotated as serialisable.
pub trait Serialize {}

/// Marker for types annotated as deserialisable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
