//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace only uses serde derives as annotations (no serializer is
//! ever instantiated offline), so the derives accept the usual `#[serde]`
//! helper attributes and expand to nothing.

use proc_macro::TokenStream;

/// Accepts the derive input (and `#[serde(...)]` field attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the derive input (and `#[serde(...)]` field attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
